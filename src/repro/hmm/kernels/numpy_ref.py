"""Reference numpy kernels for the batched HMM time recursions.

These free functions are the einsum recursions that used to live inline
in :class:`repro.hmm.batch.BatchGaussianHMM`, extracted unchanged so a
compiled backend (:mod:`repro.hmm.kernels.numba_fast`) can slot in
behind the same signatures.  They are the *semantic definition* of every
kernel op: any other backend must reproduce their outputs **bit for
bit** (see the accumulation-order notes below and the parity suite in
``tests/hmm/test_kernels.py``).

Accumulation-order contract
---------------------------
Floating-point addition is not associative, so bit-identity across
backends requires pinning the order every reduction runs in:

- ``einsum("nk,nkj->nj", ...)`` contracts ``k``, which is *strided* in
  the ``(N, K, K)`` transition stack, so numpy takes its scalar inner
  loop: a plain sequential accumulation in ``k`` order.  A compiled
  ``for k in range(K): acc += ...`` loop matches it exactly.
- The backward step is written as an elementwise product followed by
  ``.sum(axis=2)`` rather than ``einsum("nij,nj->ni", ...)``: a
  contraction over a *contiguous* axis takes numpy's SIMD
  partial-sum path, whose grouping is neither sequential nor portable
  to a compiled loop.  A last-axis ``.sum()`` uses pairwise summation,
  which degenerates to sequential accumulation for fewer than 8
  elements — hence the ``n_states < 8`` bound
  (:data:`repro.hmm.kernels.MAX_BITWISE_STATES`) under which backends
  are interchangeable.  At ``n_states == 2`` (the SSTD truth chain)
  the rewrite is bit-identical to the einsum it replaced.
- Per-row time reductions (the xi sums) reduce over a *leading* axis,
  which numpy accumulates slice by slice — sequential in ``t``.

Padded cells hold neutral values (``1/K`` in ``alpha``, ``1.0`` in
``scales`` / ``beta``, ``0`` states) and are never read by a recursion;
rows must be sorted by length descending (see
:func:`repro.hmm.batch.stack_ragged`).
"""

from __future__ import annotations

import numpy as np

from repro.hmm.utils import PROB_FLOOR

__all__ = [
    "active_counts",
    "backward",
    "estep_xi_sum",
    "forward",
    "viterbi",
]


def active_counts(lengths: np.ndarray, t_max: int) -> np.ndarray:
    """``counts[t]`` = rows whose sequence extends past timestep ``t``.

    Rows are sorted by length descending, so the active rows at any
    timestep form a prefix of the stack.
    """
    return (lengths[:, None] > np.arange(t_max)[None, :]).sum(axis=0)


def forward(
    startprob: np.ndarray,
    transmat: np.ndarray,
    emissions: np.ndarray,
    lengths: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Scaled forward pass over the stack.

    Returns ``(alpha, scales)``; a timestep whose total probability
    underflows to zero is rescued with a uniform ``alpha`` row and a
    ``PROB_FLOOR`` scale, exactly like the per-claim pass.  The per-row
    log-likelihood is ``log(scales[row, :lengths[row]]).sum()``,
    computed by the caller (:meth:`BatchGaussianHMM.forward`).
    """
    n_seqs, t_max, k = emissions.shape
    counts = active_counts(lengths, t_max)
    alpha = np.full((n_seqs, t_max, k), 1.0 / k)
    scales = np.ones((n_seqs, t_max))
    first = startprob * emissions[:, 0, :]
    total = first.sum(axis=1)
    dead = total == 0
    alpha[:, 0, :] = np.where(
        dead[:, None], 1.0 / k, first / np.where(dead, 1.0, total)[:, None]
    )
    scales[:, 0] = np.where(dead, PROB_FLOOR, total)
    for t in range(1, t_max):
        m = counts[t]
        if m == 0:
            break
        nxt = (
            np.einsum("nk,nkj->nj", alpha[:m, t - 1, :], transmat[:m])
            * emissions[:m, t, :]
        )
        total = nxt.sum(axis=1)
        dead = total == 0
        alpha[:m, t, :] = np.where(
            dead[:, None],
            1.0 / k,
            nxt / np.where(dead, 1.0, total)[:, None],
        )
        scales[:m, t] = np.where(dead, PROB_FLOOR, total)
    return alpha, scales


def backward(
    transmat: np.ndarray,
    emissions: np.ndarray,
    scales: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Scaled backward pass matching :func:`forward`'s scaling."""
    n_seqs, t_max, k = emissions.shape
    counts = active_counts(lengths, t_max)
    beta = np.ones((n_seqs, t_max, k))
    for t in range(t_max - 2, -1, -1):
        # Rows whose final timestep is t+1 keep beta[t+1] = 1; the
        # recursion only applies where the sequence extends past t+1.
        m = counts[t + 1]
        if m == 0:
            continue
        tail = emissions[:m, t + 1, :] * beta[:m, t + 1, :]
        # Contract j over the last axis with an elementwise product +
        # .sum(axis=2): sequential in j below 8 states (see module
        # docstring), unlike einsum's SIMD contiguous-contraction path.
        beta[:m, t, :] = (transmat[:m] * tail[:, None, :]).sum(axis=2) / (
            scales[:m, t + 1][:, None]
        )
    return beta


def viterbi(
    log_startprob: np.ndarray,
    log_transmat: np.ndarray,
    log_emissions: np.ndarray,
    lengths: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched log-space Viterbi with backtrace.

    Inputs are already in log space (``log_mask_zero`` lives with the
    caller so this module stays free of transcendental math).  Returns
    ``(states, log_joints)``: ``states[n, :lengths[n]]`` is row n's most
    probable hidden path (padding is 0) and ``log_joints[n]`` its joint
    log-probability.  Ties take the lowest state index, matching
    ``np.argmax``.
    """
    n_seqs, t_max, k = log_emissions.shape
    counts = active_counts(lengths, t_max)
    delta = np.zeros((n_seqs, t_max, k))
    backpointer = np.zeros((n_seqs, t_max, k), dtype=int)
    delta[:, 0, :] = log_startprob + log_emissions[:, 0, :]
    for t in range(1, t_max):
        m = counts[t]
        if m == 0:
            break
        # candidates[n, i, j] = delta[n, t-1, i] + log A_n[i, j]
        candidates = delta[:m, t - 1, :, None] + log_transmat[:m]
        best = np.argmax(candidates, axis=1)
        backpointer[:m, t, :] = best
        delta[:m, t, :] = (
            np.take_along_axis(candidates, best[:, None, :], axis=1)[:, 0, :]
            + log_emissions[:m, t, :]
        )

    rows = np.arange(n_seqs)
    last = lengths - 1
    states = np.zeros((n_seqs, t_max), dtype=int)
    states[rows, last] = np.argmax(delta[rows, last, :], axis=1)
    for t in range(t_max - 2, -1, -1):
        m = counts[t + 1]
        if m == 0:
            continue
        states[:m, t] = backpointer[np.arange(m), t + 1, states[:m, t + 1]]
    log_joints = delta[rows, last, states[rows, last]]
    return states, log_joints


def estep_xi_sum(
    transmat: np.ndarray,
    emissions: np.ndarray,
    alpha: np.ndarray,
    beta: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Baum-Welch xi sufficient statistic, summed over each row's steps.

    ``xi_sum[n, i, j] = sum_t alpha[n,t,i] * A[n,i,j] * em[n,t+1,j] *
    beta[n,t+1,j]`` over ``t in [0, lengths[n] - 1)``.  The elementwise
    product is batched; the order-sensitive time reduction runs on each
    row's own contiguous slice (bit-equal to the per-claim sum: a
    leading-axis ``.sum`` accumulates sequentially in ``t``).
    """
    n_seqs, t_max, k = emissions.shape
    if t_max > 1:
        xi_num = (
            alpha[:, :-1, :, None]
            * transmat[:, None, :, :]
            * (emissions[:, 1:, :] * beta[:, 1:, :])[:, :, None, :]
        )
    xi_sum = np.zeros((n_seqs, k, k))
    for idx in range(n_seqs):
        steps = int(lengths[idx]) - 1
        if steps > 0:
            xi_sum[idx] = xi_num[idx, :steps].sum(axis=0)
    return xi_sum
