"""Pluggable kernel backends for the batched HMM time recursions.

:class:`repro.hmm.batch.BatchGaussianHMM` runs its four inner loops —
forward scaling, backward, Viterbi + backtrace, and the Baum-Welch
xi-statistic accumulation — through one of two interchangeable
backends:

- ``numpy`` (:mod:`~repro.hmm.kernels.numpy_ref`): the reference einsum
  recursions, one interpreter-level iteration per timestep;
- ``numba`` (:mod:`~repro.hmm.kernels.numba_fast`): each whole time
  recursion fused into a single ``@njit(cache=True, nogil=True)`` loop
  with no per-timestep temporaries.

Selection goes through :func:`resolve_kernel`.  Precedence: an explicit
name (``SSTDConfig.kernel``) beats the ``REPRO_KERNEL`` environment
variable beats the default ``auto``.  ``auto`` picks numba only when it
is importable, the state count is below :data:`MAX_BITWISE_STATES`
(numpy's pairwise-summation threshold — above it last-axis sums stop
being sequential and the backends could disagree in the last bit), and
a one-time bitwise :func:`kernel_parity_ok` probe passes on this
machine; otherwise it falls back to numpy silently.  numba therefore
stays an optional dependency, and shard-composition determinism — the
PR-5 contract that a claim's result is bit-identical in any batch — is
preserved by construction: both backends produce identical bits, and a
master and its workers resolve the same backend from the same
environment.

The active backend is observable: ``batch_fit_decode`` stamps it on the
``sstd.batch_fit`` span and sets the ``hmm.kernel`` gauge
(:func:`kernel_gauge_value`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hmm.kernels import numba_fast, numpy_ref
from repro.hmm.utils import log_mask_zero

__all__ = [
    "KERNEL_NAMES",
    "KernelOps",
    "MAX_BITWISE_STATES",
    "active_kernel_info",
    "available_backends",
    "kernel_gauge_value",
    "kernel_parity_ok",
    "resolve_kernel",
]

#: Valid values for ``SSTDConfig.kernel`` / ``REPRO_KERNEL``.
KERNEL_NAMES = ("auto", "numpy", "numba")

#: numpy switches last-axis sums from sequential to blocked pairwise
#: accumulation at 8 elements; below this bound every reduction the
#: kernels perform is sequential, so a compiled loop can match numpy
#: bit for bit.  ``auto`` never selects numba at or above it.
MAX_BITWISE_STATES = 8

#: ``hmm.kernel`` gauge encoding (gauges are floats).
_GAUGE_VALUES = {"numpy": 0.0, "numba": 1.0}


@dataclass(frozen=True)
class KernelOps:
    """One backend's implementations of the four kernel ops."""

    name: str
    forward: Callable[..., tuple[np.ndarray, np.ndarray]]
    backward: Callable[..., np.ndarray]
    viterbi: Callable[..., tuple[np.ndarray, np.ndarray]]
    estep_xi_sum: Callable[..., np.ndarray]


_NUMPY_OPS = KernelOps(
    name="numpy",
    forward=numpy_ref.forward,
    backward=numpy_ref.backward,
    viterbi=numpy_ref.viterbi,
    estep_xi_sum=numpy_ref.estep_xi_sum,
)

_NUMBA_OPS = KernelOps(
    name="numba",
    forward=numba_fast.forward,
    backward=numba_fast.backward,
    viterbi=numba_fast.viterbi,
    estep_xi_sum=numba_fast.estep_xi_sum,
)

#: Parity-probe verdict per state count, so the probe (which pays one
#: JIT compilation on first use) runs at most once per K per process.
_PARITY_CACHE: dict[int, bool] = {}


def available_backends() -> tuple[str, ...]:
    """Backends usable for real work on this interpreter."""
    if numba_fast.AVAILABLE:
        return ("numpy", "numba")
    return ("numpy",)


def kernel_gauge_value(name: str) -> float:
    """Numeric encoding of a backend name for the ``hmm.kernel`` gauge."""
    return _GAUGE_VALUES[name]


def _probe_stack(n_states: int) -> tuple[np.ndarray, ...]:
    """A small deterministic ragged stack exercising every kernel path.

    Built from closed-form ramps (no RNG, no transcendentals): ragged
    lengths down to 1, a dead timestep (all-zero emissions, the
    PROB_FLOOR rescue), a constant row, and irregular positive values
    whose products are inexact so accumulation-order bugs surface.
    """
    n_seqs, t_max, k = 5, 12, n_states
    base = 1.0 + np.arange(n_seqs * t_max * k, dtype=float) % 7.0
    emissions = (base / 3.0).reshape(n_seqs, t_max, k)
    emissions[1, 4, :] = 0.0  # dead timestep: total mass underflows
    emissions[2] = 0.625  # constant row
    lengths = np.array([12, 10, 7, 3, 1], dtype=np.int64)[:n_seqs]
    startprob = np.tile(
        (1.0 + np.arange(k)) / (k * (k + 1) / 2.0), (n_seqs, 1)
    )
    raw = 1.0 + (np.arange(n_seqs * k * k, dtype=float) % 5.0)
    transmat = raw.reshape(n_seqs, k, k)
    transmat /= transmat.sum(axis=2, keepdims=True)
    return startprob, transmat, emissions, lengths


def kernel_parity_ok(n_states: int) -> bool:
    """True when the numba backend matches numpy bit for bit at this K.

    Runs all four ops on a synthetic probe stack and compares exact
    array equality (NaN-free by construction).  Works — interpreted —
    even without numba installed, where it checks the fallback loops;
    the verdict is cached per state count.
    """
    cached = _PARITY_CACHE.get(n_states)
    if cached is not None:
        return cached
    startprob, transmat, emissions, lengths = _probe_stack(n_states)
    log_startprob = log_mask_zero(startprob)
    log_transmat = log_mask_zero(transmat)
    log_emissions = log_mask_zero(emissions)
    ok = True
    alpha_ref, scales_ref = _NUMPY_OPS.forward(
        startprob, transmat, emissions, lengths
    )
    alpha, scales = _NUMBA_OPS.forward(startprob, transmat, emissions, lengths)
    ok &= bool((alpha == alpha_ref).all() and (scales == scales_ref).all())
    beta_ref = _NUMPY_OPS.backward(transmat, emissions, scales_ref, lengths)
    beta = _NUMBA_OPS.backward(transmat, emissions, scales_ref, lengths)
    ok &= bool((beta == beta_ref).all())
    states_ref, joints_ref = _NUMPY_OPS.viterbi(
        log_startprob, log_transmat, log_emissions, lengths
    )
    states, joints = _NUMBA_OPS.viterbi(
        log_startprob, log_transmat, log_emissions, lengths
    )
    ok &= bool((states == states_ref).all() and (joints == joints_ref).all())
    xi_ref = _NUMPY_OPS.estep_xi_sum(
        transmat, emissions, alpha_ref, beta_ref, lengths
    )
    xi = _NUMBA_OPS.estep_xi_sum(
        transmat, emissions, alpha_ref, beta_ref, lengths
    )
    ok &= bool((xi == xi_ref).all())
    _PARITY_CACHE[n_states] = ok
    return ok


def resolve_kernel(
    name: str | None = None, n_states: int | None = None
) -> KernelOps:
    """Pick the kernel backend for a model with ``n_states`` states.

    ``name=None`` defers to ``REPRO_KERNEL`` (default ``auto``).
    ``numpy`` always works; ``numba`` raises if numba is not importable
    (an explicit request must not silently degrade); ``auto`` selects
    numba only when available *and* provably bit-identical at this
    state count, numpy otherwise.
    """
    requested = name or os.environ.get("REPRO_KERNEL") or "auto"
    if requested not in KERNEL_NAMES:
        raise ValueError(
            f"kernel must be one of {KERNEL_NAMES}, got {requested!r}"
        )
    if requested == "numpy":
        return _NUMPY_OPS
    if requested == "numba":
        if not numba_fast.AVAILABLE:
            raise RuntimeError(
                "kernel 'numba' requested but numba is not importable; "
                "install numba or use kernel='auto' for a silent fallback"
            )
        return _NUMBA_OPS
    # auto: compiled fast path only where the determinism contract holds
    if not numba_fast.AVAILABLE:
        return _NUMPY_OPS
    if n_states is not None and (
        n_states >= MAX_BITWISE_STATES or not kernel_parity_ok(n_states)
    ):
        return _NUMPY_OPS
    return _NUMBA_OPS


def active_kernel_info(n_states: int = 2) -> dict[str, object]:
    """What ``auto`` resolves to right now — recorded by benchmarks.

    Keys: ``backend`` (resolved name honouring ``REPRO_KERNEL``),
    ``numba_available``, ``numba_version`` (None without numba).
    """
    return {
        "backend": resolve_kernel(None, n_states=n_states).name,
        "numba_available": numba_fast.AVAILABLE,
        "numba_version": numba_fast.NUMBA_VERSION,
    }
