"""Dynamic Task Manager: the control plane of SSTD (Section IV-B/C).

The DTM closes the feedback loop of Figure 3 in the paper:

1. every ``sample_period`` (virtual) seconds it *measures* each active
   TD job's execution time and projects its finish time with the WCET
   model;
2. a per-job PID controller turns (deadline - projection) into a control
   signal;
3. the Local Control Knob maps each signal to a new job priority on the
   Work Queue master;
4. the Global Control Knob aggregates all signals into a worker-pool
   size target for the elastic pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.simulation import PeriodicTask, Simulator
from repro.control.feedback import TrajectoryRecorder
from repro.control.knobs import GlobalControlKnob, KnobConfig, LocalControlKnob
from repro.control.pid import PAPER_GAINS, PIDController, PIDGains
from repro.control.wcet import WCETModel
from repro.obs import Observability
from repro.system.jobs import TDJob
from repro.workqueue.master import WorkQueueMaster
from repro.workqueue.pool import ElasticWorkerPool

__all__ = [
    "CONTROL_MODES",
    "DTMConfig",
    "DynamicTaskManager",
]

#: Measurement sources for the per-job projection: the paper's open-loop
#: WCET model, or the observed ``wq.task_seconds`` p95 latency.
CONTROL_MODES = ("wcet", "latency")


@dataclass(frozen=True, slots=True)
class DTMConfig:
    """Control-plane configuration.

    Attributes:
        sample_period: Controller sampling period (paper uses 1 second).
        pid_gains: Per-job PID coefficients.
        knobs: LCK/GCK gains and bounds.
        elastic: Allow the GCK to resize the worker pool; when False the
            pool size is fixed and only priorities adapt.
        mode: ``"wcet"`` (default) projects finish times from the
            paper's worst-case execution-time model; ``"latency"``
            projects them from the live ``wq.task_seconds`` p95 the
            observability plane records, falling back to WCET until the
            first samples arrive.  Latency mode closes the loop on what
            the system *measures* rather than what the model predicts.
        scale_dwell: Oscillation-damping window handed to the elastic
            pool (see :class:`~repro.workqueue.pool.ElasticWorkerPool`);
            latency-fed targets are noisier than WCET ones, so runs in
            latency mode typically want a dwell of a few sample periods.
        trajectory_path: When set, every per-job ``pid.update`` is
            recorded there for ``repro-cli replay-controller``.
    """

    sample_period: float = 1.0
    pid_gains: PIDGains = PAPER_GAINS
    knobs: KnobConfig = field(default_factory=KnobConfig)
    elastic: bool = True
    mode: str = "wcet"
    scale_dwell: float = 0.0
    trajectory_path: str | None = None

    def __post_init__(self) -> None:
        if self.sample_period <= 0:
            raise ValueError("sample_period must be > 0")
        if self.mode not in CONTROL_MODES:
            raise ValueError(
                f"mode must be one of {CONTROL_MODES}, got {self.mode!r}"
            )
        if self.scale_dwell < 0:
            raise ValueError("scale_dwell must be >= 0")


class DynamicTaskManager:
    """Deadline-driven controller wired to a Work Queue master."""

    def __init__(
        self,
        simulator: Simulator,
        master: WorkQueueMaster,
        pool: ElasticWorkerPool,
        wcet: WCETModel,
        config: DTMConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.simulator = simulator
        self.master = master
        self.pool = pool
        self.wcet = wcet
        self.config = config or DTMConfig()
        # Control plane and data plane share one recorder by default, so
        # controller samples land on the same (virtual) clockline as
        # dispatch events.
        self.obs = obs if obs is not None else master.obs
        self.recorder = (  # owns-resource: closed in stop()
            TrajectoryRecorder(self.config.trajectory_path)
            if self.config.trajectory_path
            else None
        )
        self.jobs: dict[str, TDJob] = {}
        self.controllers: dict[str, PIDController] = {}
        self.lcks: dict[str, LocalControlKnob] = {}
        self.gck = GlobalControlKnob(self.config.knobs)
        self.signal_log: list[dict[str, float]] = []
        self.pool_size_log: list[tuple[float, int]] = []
        self._sampler: PeriodicTask | None = None

    # ------------------------------------------------------------------
    # Job registration
    # ------------------------------------------------------------------
    def register_job(self, job: TDJob) -> None:
        if job.job_id in self.jobs:
            raise ValueError(f"job {job.job_id!r} already registered")
        self.jobs[job.job_id] = job
        self.controllers[job.job_id] = PIDController(
            gains=self.config.pid_gains,
            sample_time=self.config.sample_period,
            obs=self.obs,
            name=f"pid:{job.job_id}",
            recorder=self.recorder,
        )
        self.lcks[job.job_id] = LocalControlKnob(job.job_id, self.config.knobs)

    def job(self, job_id: str) -> TDJob:
        return self.jobs[job_id]

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic sampler (idempotent)."""
        if self._sampler is None:
            self._sampler = PeriodicTask(
                self.simulator, self.config.sample_period, self.sample_once
            )

    def stop(self) -> None:
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler = None
        if self.recorder is not None:
            self.recorder.close()

    def _projected_time(self, job: TDJob) -> float:
        """Elapsed time so far plus predicted time for the remaining work.

        In ``latency`` mode the remaining-work prediction uses the
        observed ``wq.task_seconds`` p95 instead of the WCET model: the
        job's pending task count times the p95 per-task latency, divided
        by the execution lanes its priority share buys it.  Until the
        first completed task there is no latency sample and the WCET
        model projects, so the two modes start identically and diverge
        as measurements arrive.
        """
        account = self.master.jobs.get(job.job_id)
        if account is None:
            return 0.0
        elapsed = self.master.job_elapsed(job.job_id)
        if account.pending == 0:
            return elapsed
        priority_share = self._priority_share(job.job_id)
        workers = max(1, self.pool.size)
        if self.config.mode == "latency":
            hist = self.obs.metrics.histogram("wq.task_seconds")
            if hist is not None and hist.count > 0:
                p95 = hist.quantile(95.0)
                lanes = max(1.0, workers * priority_share)
                return elapsed + account.pending * p95 / lanes
        remaining_data = sum(
            task.data_size
            for task in self.master.pending
            if task.job_id == job.job_id
        )
        remaining = self.wcet.job_wcet_simplified(
            max(remaining_data, 1.0), priority_share, workers
        )
        return elapsed + remaining

    def _priority_share(self, job_id: str) -> float:
        total = sum(
            self.master.priority_of(other) for other in self.jobs
        )
        if total <= 0:
            return 1.0 / max(1, len(self.jobs))
        share = self.master.priority_of(job_id) / total
        return min(max(share, 1e-6), 1.0)

    def sample_once(self) -> None:
        """One controller sample: measure, PID, actuate both knobs."""
        signals: dict[str, float] = {}
        for job_id, job in self.jobs.items():
            account = self.master.jobs.get(job_id)
            if account is None or account.pending == 0:
                continue
            projected = self._projected_time(job)
            error = job.deadline - projected
            signal = self.controllers[job_id].update(
                error, dt=self.config.sample_period
            )
            signals[job_id] = signal
            priority = self.lcks[job_id].apply(signal, reference=job.deadline)
            self.master.set_priority(job_id, priority)

        if signals:
            self.signal_log.append(dict(signals))
            if self.config.elastic:
                reference = min(job.deadline for job in self.jobs.values())
                target = self.gck.target_size(
                    self.pool.size, signals, reference=reference
                )
                if target != self.pool.size:
                    self.pool.scale_to(target)
                    if self.obs.enabled:
                        self.obs.tracer.instant(
                            "control.scale",
                            track="control",
                            target=target,
                        )
            self.pool_size_log.append((self.simulator.now, self.pool.size))
        if self.obs.enabled:
            self.obs.metrics.inc("control.samples")
            self.obs.metrics.set_gauge("control.pool_size", float(self.pool.size))
            self.obs.tracer.instant(
                "control.update",
                track="control",
                jobs=len(signals),
                pool_size=self.pool.size,
            )
