"""System monitoring: execution-state sampling (paper §IV-C3).

The paper's controller "continuously monitor[s] the timestamps of the
output files of the TD job" at 1 Hz.  This module generalizes that into
a reusable monitor that samples the Work Queue master's state on the
virtual clock and summarizes the run afterwards — queue depth, worker
utilization, per-job backlog — which the examples and failure-injection
tests use to observe the system from the outside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.simulation import PeriodicTask, Simulator
from repro.workqueue.master import WorkQueueMaster

__all__ = [
    "MonitorSample",
    "MonitorSummary",
    "SystemMonitor",
]


@dataclass(frozen=True, slots=True)
class MonitorSample:
    """One snapshot of the execution state."""

    time: float
    pending_tasks: int
    busy_workers: int
    total_workers: int
    jobs_with_backlog: int

    @property
    def utilization(self) -> float:
        if self.total_workers == 0:
            return 0.0
        return self.busy_workers / self.total_workers


@dataclass
class MonitorSummary:
    """Aggregates over a finished run."""

    samples: Sequence[MonitorSample]

    @property
    def mean_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.utilization for s in self.samples) / len(self.samples)

    @property
    def peak_queue_depth(self) -> int:
        return max((s.pending_tasks for s in self.samples), default=0)

    @property
    def mean_queue_depth(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.pending_tasks for s in self.samples) / len(self.samples)


class SystemMonitor:
    """Samples a Work Queue master on a fixed virtual-time period."""

    def __init__(
        self,
        simulator: Simulator,
        master: WorkQueueMaster,
        period: float = 1.0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be > 0")
        self.simulator = simulator
        self.master = master
        self.period = period
        self.samples: list[MonitorSample] = []
        self._task: PeriodicTask | None = None

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._task is None:
            self._task = PeriodicTask(
                self.simulator, self.period, self.sample_once
            )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def sample_once(self) -> None:
        busy = sum(1 for w in self.master.workers if w.busy)
        backlog = sum(
            1 for account in self.master.jobs.values() if account.pending > 0
        )
        self.samples.append(
            MonitorSample(
                time=self.simulator.now,
                pending_tasks=len(self.master.pending),
                busy_workers=busy,
                total_workers=self.master.active_worker_count,
                jobs_with_backlog=backlog,
            )
        )

    def summary(self) -> MonitorSummary:
        return MonitorSummary(samples=tuple(self.samples))
