"""System monitoring: execution-state sampling (paper §IV-C3).

The paper's controller "continuously monitor[s] the timestamps of the
output files of the TD job" at 1 Hz.  This module generalizes that into
a reusable monitor that samples the Work Queue master's state on the
virtual clock and summarizes the run afterwards — queue depth, worker
utilization, per-job backlog — which the examples and failure-injection
tests use to observe the system from the outside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.simulation import PeriodicTask, Simulator
from repro.obs import Observability, percentile
from repro.workqueue.master import WorkQueueMaster

__all__ = [
    "MonitorSample",
    "MonitorSummary",
    "SystemMonitor",
]


@dataclass(frozen=True, slots=True)
class MonitorSample:
    """One snapshot of the execution state.

    ``task_p95`` is the p95 of the ``wq.task_seconds`` histogram at
    sampling time (0.0 before the first task completes or when tracing
    is off) — the signal the latency control mode feeds its PID from.
    """

    time: float
    pending_tasks: int
    busy_workers: int
    total_workers: int
    jobs_with_backlog: int
    task_p95: float = 0.0

    @property
    def utilization(self) -> float:
        if self.total_workers == 0:
            return 0.0
        return self.busy_workers / self.total_workers


@dataclass
class MonitorSummary:
    """Aggregates over a finished run."""

    samples: Sequence[MonitorSample]

    @property
    def mean_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.utilization for s in self.samples) / len(self.samples)

    @property
    def peak_queue_depth(self) -> int:
        return max((s.pending_tasks for s in self.samples), default=0)

    @property
    def mean_queue_depth(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.pending_tasks for s in self.samples) / len(self.samples)

    # -- distribution helpers (nearest-rank; empty sample sets -> 0.0) --
    def queue_depth_percentile(self, q: float) -> float:
        """``q``-th percentile of the sampled queue depth."""
        return percentile([s.pending_tasks for s in self.samples], q)

    def utilization_percentile(self, q: float) -> float:
        """``q``-th percentile of the sampled worker utilization."""
        return percentile([s.utilization for s in self.samples], q)

    @property
    def p50_queue_depth(self) -> float:
        return self.queue_depth_percentile(50.0)

    @property
    def p95_queue_depth(self) -> float:
        return self.queue_depth_percentile(95.0)

    @property
    def p50_utilization(self) -> float:
        return self.utilization_percentile(50.0)

    @property
    def p95_utilization(self) -> float:
        return self.utilization_percentile(95.0)

    @property
    def max_utilization(self) -> float:
        return max((s.utilization for s in self.samples), default=0.0)

    @property
    def p95_task_seconds(self) -> float:
        """p95 of the sampled per-task latency p95s (0.0 with no data)."""
        return percentile([s.task_p95 for s in self.samples], 95.0)


class SystemMonitor:
    """Samples a Work Queue master on a fixed virtual-time period."""

    def __init__(
        self,
        simulator: Simulator,
        master: WorkQueueMaster,
        period: float = 1.0,
        obs: Observability | None = None,
    ) -> None:
        """Args:
            simulator: The virtual clock driving the sampling period.
            master: The Work Queue master being observed.
            period: Sampling period in virtual seconds (paper: 1 Hz).
            obs: Metric registry to consume; defaults to the master's
                own recorder.  When tracing is on, each sample reads the
                ``wq.*`` gauges the master maintains (falling back to
                direct master reads when a gauge has not been set yet)
                and feeds ``monitor.queue_depth`` /
                ``monitor.utilization`` histograms back into it.
        """
        if period <= 0:
            raise ValueError("period must be > 0")
        self.simulator = simulator
        self.master = master
        self.period = period
        self.obs = obs if obs is not None else master.obs
        self.samples: list[MonitorSample] = []
        self._task: PeriodicTask | None = None

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._task is None:
            self._task = PeriodicTask(
                self.simulator, self.period, self.sample_once
            )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def sample_once(self) -> None:
        backlog = sum(
            1 for account in self.master.jobs.values() if account.pending > 0
        )
        if self.obs.enabled:
            # Consume the master's registry gauges; a gauge the master
            # has not touched yet falls back to a direct read.
            metrics = self.obs.metrics
            pending = int(
                metrics.gauge("wq.queue_depth", float(len(self.master.pending)))
            )
            busy = int(
                metrics.gauge(
                    "wq.busy_workers",
                    float(sum(1 for w in self.master.workers if w.busy)),
                )
            )
            total = int(
                metrics.gauge(
                    "wq.active_workers", float(self.master.active_worker_count)
                )
            )
            hist = metrics.histogram("wq.task_seconds")
            task_p95 = (
                hist.quantile(95.0) if hist is not None and hist.count else 0.0
            )
        else:
            pending = len(self.master.pending)
            busy = sum(1 for w in self.master.workers if w.busy)
            total = self.master.active_worker_count
            task_p95 = 0.0
        sample = MonitorSample(
            time=self.simulator.now,
            pending_tasks=pending,
            busy_workers=busy,
            total_workers=total,
            jobs_with_backlog=backlog,
            task_p95=task_p95,
        )
        self.samples.append(sample)
        if self.obs.enabled:
            self.obs.metrics.observe(
                "monitor.queue_depth", float(sample.pending_tasks)
            )
            self.obs.metrics.observe("monitor.utilization", sample.utilization)

    def summary(self) -> MonitorSummary:
        return MonitorSummary(samples=tuple(self.samples))
