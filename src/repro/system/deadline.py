"""Deadline bookkeeping: per-interval hit/miss statistics (Figure 6).

The paper's controllability experiment divides each trace into 100 equal
time intervals, records the execution time to process each interval, and
reports the *hit rate* — the fraction of intervals whose execution time
stayed within the deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = [
    "DeadlineTracker",
    "IntervalRecord",
    "hit_rate_curve",
]


@dataclass(frozen=True, slots=True)
class IntervalRecord:
    """Outcome of processing one time interval.

    ``n_deferred`` / ``n_shed`` count the admission controller's
    decisions for the interval (always 0 without a feedback loop).
    """

    index: int
    n_reports: int
    execution_time: float
    deadline: float
    n_deferred: int = 0
    n_shed: int = 0

    @property
    def hit(self) -> bool:
        return self.execution_time <= self.deadline

    @property
    def lateness(self) -> float:
        """Seconds over deadline (0 when the deadline was met)."""
        return max(0.0, self.execution_time - self.deadline)


@dataclass
class DeadlineTracker:
    """Accumulates interval outcomes and summarizes them."""

    deadline: float
    records: list[IntervalRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError("deadline must be > 0")

    def record(
        self,
        index: int,
        n_reports: int,
        execution_time: float,
        n_deferred: int = 0,
        n_shed: int = 0,
    ) -> IntervalRecord:
        if execution_time < 0:
            raise ValueError("execution_time must be >= 0")
        entry = IntervalRecord(
            index=index,
            n_reports=n_reports,
            execution_time=execution_time,
            deadline=self.deadline,
            n_deferred=n_deferred,
            n_shed=n_shed,
        )
        self.records.append(entry)
        return entry

    @property
    def total_deferred(self) -> int:
        return sum(r.n_deferred for r in self.records)

    @property
    def total_shed(self) -> int:
        return sum(r.n_shed for r in self.records)

    @property
    def hit_rate(self) -> float:
        """Fraction of intervals that met the deadline (0.0 when empty)."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.hit) / len(self.records)

    @property
    def mean_execution_time(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.execution_time for r in self.records) / len(self.records)

    @property
    def total_lateness(self) -> float:
        return sum(r.lateness for r in self.records)


def hit_rate_curve(
    execution_times: Sequence[float], deadlines: Sequence[float]
) -> list[tuple[float, float]]:
    """Hit rate of fixed execution times under a sweep of deadlines.

    Used to regenerate Figure 6's x-axis sweep from one set of measured
    per-interval execution times.
    """
    curve = []
    for deadline in deadlines:
        if deadline <= 0:
            raise ValueError("deadlines must be > 0")
        hits = sum(1 for t in execution_times if t <= deadline)
        rate = hits / len(execution_times) if execution_times else 0.0
        curve.append((float(deadline), rate))
    return curve
