"""Truth Discovery (TD) jobs.

SSTD assigns each claim its own TD job (paper Section III-E): the job
owns the claim's report stream, is split into Work Queue tasks, and has
a soft deadline expressing the application's responsiveness requirement
(Section II).  The job is also the unit the control loop steers — priorities
are per-job, and WCET predictions are per-job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.acs import acs_sequence
from repro.core.sstd import ClaimTruthModel, SSTDConfig
from repro.core.types import Report, TruthEstimate
from repro.workqueue.task import PayloadSpec, Task

__all__ = [
    "TDJob",
    "decode_claim_payload",
    "decode_task_spec",
]


def decode_claim_payload(
    claim_id: str,
    reports: tuple[Report, ...],
    config: SSTDConfig,
    start: float | None = None,
    end: float | None = None,
) -> tuple[TruthEstimate, ...]:
    """Run one claim's full TD pipeline: ACS sequence → fit → decode.

    This is the unit of distribution (paper Section III-E) expressed as
    a *module-level* function, so it can be shipped to a worker process
    as a :class:`repro.workqueue.task.PayloadSpec` — closures cannot
    cross a pickle boundary.  All executors (simulated, threads,
    processes) run exactly this payload, which is what keeps their
    estimates bit-identical.
    """
    times, values = acs_sequence(reports, config.acs, start=start, end=end)
    model = ClaimTruthModel(claim_id, config)
    return model.fit_decode(times, values).estimates


def decode_task_spec(
    claim_id: str,
    reports: Sequence[Report],
    config: SSTDConfig,
    start: float | None = None,
    end: float | None = None,
) -> PayloadSpec:
    """Picklable payload spec for one claim's Truth Discovery job."""
    return PayloadSpec(
        decode_claim_payload, (claim_id, tuple(reports), config, start, end)
    )


@dataclass
class TDJob:
    """One claim's truth-discovery job.

    Attributes:
        job_id: Stable identifier (the claim id).
        claim_id: The claim this job decodes.
        deadline: Soft deadline in seconds for processing one batch of
            this job's data (paper ``dl_j``).
        tasks_per_batch: How many tasks a data batch is split into; the
            paper keeps this small to bound initialization overhead
            (Section IV-C4).
    """

    job_id: str
    claim_id: str
    deadline: float = 10.0
    tasks_per_batch: int = 1
    reports_seen: int = 0
    batches_submitted: int = 0

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.deadline <= 0:
            raise ValueError("deadline must be > 0")
        if self.tasks_per_batch < 1:
            raise ValueError("tasks_per_batch must be >= 1")

    def make_tasks(
        self,
        reports: Sequence[Report],
        payload: Callable[[Sequence[Report]], Any] | None = None,
    ) -> list[Task]:
        """Split one batch of reports into Work Queue tasks.

        Data is divided equally between the job's tasks (Section IV-C4).
        ``payload`` receives each task's slice of reports; its return
        value becomes the task output.
        """
        self.reports_seen += len(reports)
        self.batches_submitted += 1
        n_tasks = min(self.tasks_per_batch, max(1, len(reports)))
        chunks: list[Sequence[Report]] = []
        if reports:
            size = len(reports) // n_tasks
            remainder = len(reports) % n_tasks
            start = 0
            for k in range(n_tasks):
                extra = 1 if k < remainder else 0
                chunks.append(reports[start : start + size + extra])
                start += size + extra
        else:
            chunks.append(())

        tasks = []
        for chunk in chunks:
            fn = None
            if payload is not None:
                # Bind the chunk now; late binding in a loop is a classic bug.
                fn = (lambda data: lambda: payload(data))(chunk)
            tasks.append(
                Task(job_id=self.job_id, data_size=float(len(chunk)), fn=fn)
            )
        return tasks
