"""Truth Discovery (TD) jobs.

SSTD assigns each claim its own TD job (paper Section III-E): the job
owns the claim's report stream, is split into Work Queue tasks, and has
a soft deadline expressing the application's responsiveness requirement
(Section II).  The job is also the unit the control loop steers — priorities
are per-job, and WCET predictions are per-job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.acs import acs_sequence
from repro.core.sstd import ClaimTruthModel, SSTDConfig, batch_fit_decode
from repro.core.types import Report, TruthEstimate, TruthValue
from repro.hmm.batch import ragged_views
from repro.system import shm
from repro.workqueue.task import PayloadSpec, Task

__all__ = [
    "ClaimStack",
    "TDJob",
    "build_claim_stack",
    "decode_claim_payload",
    "decode_shard_payload",
    "decode_shard_shm_payload",
    "decode_task_spec",
    "expand_shard_result",
    "shard_task_spec",
    "shm_shard_task_spec",
    "streaming_push_payload",
]


def decode_claim_payload(
    claim_id: str,
    reports: tuple[Report, ...],
    config: SSTDConfig,
    start: float | None = None,
    end: float | None = None,
) -> tuple[TruthEstimate, ...]:
    """Run one claim's full TD pipeline: ACS sequence → fit → decode.

    This is the unit of distribution (paper Section III-E) expressed as
    a *module-level* function, so it can be shipped to a worker process
    as a :class:`repro.workqueue.task.PayloadSpec` — closures cannot
    cross a pickle boundary.  All executors (simulated, threads,
    processes) run exactly this payload, which is what keeps their
    estimates bit-identical.
    """
    times, values = acs_sequence(reports, config.acs, start=start, end=end)
    model = ClaimTruthModel(claim_id, config)
    return model.fit_decode(times, values).estimates


def decode_task_spec(
    claim_id: str,
    reports: Sequence[Report],
    config: SSTDConfig,
    start: float | None = None,
    end: float | None = None,
) -> PayloadSpec:
    """Picklable payload spec for one claim's Truth Discovery job."""
    return PayloadSpec(
        decode_claim_payload, (claim_id, tuple(reports), config, start, end)
    )


def decode_shard_payload(
    claims: tuple[tuple[str, tuple[Report, ...]], ...],
    config: SSTDConfig,
    start: float | None = None,
    end: float | None = None,
) -> tuple[tuple[str, tuple[TruthEstimate, ...]], ...]:
    """Run the TD pipeline for a *shard* of claims in one task.

    One Work Queue task per claim pays pickle + dispatch + spawn
    overhead per claim; a shard amortizes that over many claims and
    feeds them all to one :func:`repro.core.sstd.batch_fit_decode` call,
    so the EM/decode recursions are batched too.  Returns one
    ``(claim_id, estimates)`` pair per claim — callers track progress
    per claim, not per task.  The batched kernel is row-deterministic,
    so shard composition never changes any claim's estimates.
    """
    items = []
    for claim_id, reports in claims:
        times, values = acs_sequence(
            reports, config.acs, start=start, end=end
        )
        items.append((claim_id, times, values))
    results = batch_fit_decode(items, config)
    return tuple((result.claim_id, result.estimates) for result in results)


def shard_task_spec(
    claims: Sequence[tuple[str, Sequence[Report]]],
    config: SSTDConfig,
    start: float | None = None,
    end: float | None = None,
) -> PayloadSpec:
    """Picklable payload spec for a multi-claim Truth Discovery shard."""
    frozen = tuple(
        (claim_id, tuple(reports)) for claim_id, reports in claims
    )
    return PayloadSpec(decode_shard_payload, (frozen, config, start, end))


@dataclass(frozen=True)
class ClaimStack:
    """NaN-padded per-claim ACS observation stacks, ready to publish.

    The master runs :func:`repro.core.acs.acs_sequence` once per claim
    and packs the results into ``(N, T_max)`` matrices — row order is
    ``claim_ids`` order, padding is NaN, real per-row extents live in
    ``lengths``.  This is the unit the zero-copy data plane ships: a
    shard task references rows of a published stack instead of carrying
    pickled report tuples.
    """

    claim_ids: tuple[str, ...]
    times: np.ndarray
    values: np.ndarray
    lengths: np.ndarray

    def row_of(self, claim_id: str) -> int:
        return self.claim_ids.index(claim_id)

    def publish(self) -> shm.SegmentOwner:
        """Publish the stacks into one shared-memory segment (or fallback)."""
        return shm.publish_arrays(
            {"times": self.times, "values": self.values, "lengths": self.lengths}
        )


def build_claim_stack(
    claims: Sequence[tuple[str, Sequence[Report]]],
    config: SSTDConfig,
    start: float | None = None,
    end: float | None = None,
) -> ClaimStack:
    """Compute every claim's ACS sequence and pack it into one stack.

    Runs exactly the same ``acs_sequence`` call the worker-side payloads
    run, so decoding from the stack is bit-identical to decoding from
    the raw reports — the ACS grid just gets computed once, on the
    master, instead of once per task attempt on the workers.
    """
    claim_ids: list[str] = []
    sequences: list[tuple[np.ndarray, np.ndarray]] = []
    for claim_id, reports in claims:
        times, values = acs_sequence(reports, config.acs, start=start, end=end)
        claim_ids.append(claim_id)
        sequences.append((times, values))
    t_max = max((times.size for times, _ in sequences), default=0)
    t_max = max(t_max, 1)
    n_claims = len(claim_ids)
    times_stack = np.full((n_claims, t_max), np.nan)
    values_stack = np.full((n_claims, t_max), np.nan)
    lengths = np.zeros(n_claims, dtype=np.int64)
    for row, (times, values) in enumerate(sequences):
        lengths[row] = times.size
        times_stack[row, : times.size] = times
        values_stack[row, : values.size] = values
    return ClaimStack(
        claim_ids=tuple(claim_ids),
        times=times_stack,
        values=values_stack,
        lengths=lengths,
    )


def decode_shard_shm_payload(
    claim_ids: tuple[str, ...],
    rows: tuple[int, ...],
    handle: shm.SegmentHandle,
    config: SSTDConfig,
) -> tuple[np.ndarray, np.ndarray]:
    """Decode a shard of claims straight out of a published stack.

    The worker attaches zero-copy read-only views onto the published
    ``times`` / ``values`` stacks, feeds its rows to the same
    :func:`repro.core.sstd.batch_fit_decode` call the legacy payload
    uses, and returns a *compact* result: one contiguous ``int8`` array
    of decoded truth codes and one ``float64`` array of confidences,
    concatenated in shard claim order.  The master reconstructs full
    :class:`~repro.core.types.TruthEstimate` objects with
    :func:`expand_shard_result` — it already owns the timestamps, so
    shipping them back would only re-pickle what the stack holds.
    """
    with shm.attach(handle) as segment:
        times_stack = segment.array("times")
        values_stack = segment.array("values")
        lengths = segment.array("lengths")
        times_rows = ragged_views(times_stack, lengths)
        values_rows = ragged_views(values_stack, lengths)
        items = [
            (claim_id, times_rows[row], values_rows[row])
            for claim_id, row in zip(claim_ids, rows)
        ]
        results = batch_fit_decode(items, config)
        n_estimates = sum(len(result.values) for result in results)
        codes = np.fromiter(
            (int(value) for result in results for value in result.values),
            dtype=np.int8,
            count=n_estimates,
        )
        confidences = np.fromiter(
            (
                estimate.confidence
                for result in results
                for estimate in result.estimates
            ),
            dtype=np.float64,
            count=n_estimates,
        )
        # Drop every object that aliases the segment before detaching so
        # the close path can really unmap (kept-alive views only delay
        # reclamation, they never corrupt: the arrays above are copies).
        del items, results, times_rows, values_rows
        del times_stack, values_stack, lengths
    return codes, confidences


def shm_shard_task_spec(
    stack: ClaimStack,
    shard: Sequence[str],
    handle: shm.SegmentHandle,
    config: SSTDConfig,
) -> PayloadSpec:
    """Picklable zero-copy payload spec: claim ids + row offsets only.

    The pickled spec is O(claims in the shard) — ids, row indices, the
    segment handle, the engine config — instead of the legacy payload's
    O(reports) pickled report tuples.
    """
    rows = tuple(stack.row_of(claim_id) for claim_id in shard)
    return PayloadSpec(
        decode_shard_shm_payload, (tuple(shard), rows, handle, config)
    )


def expand_shard_result(
    stack: ClaimStack,
    claim_ids: Sequence[str],
    codes: np.ndarray,
    confidences: np.ndarray,
) -> tuple[tuple[str, tuple[TruthEstimate, ...]], ...]:
    """Rebuild per-claim estimates from a compact shard result.

    Inverse of the packing in :func:`decode_shard_shm_payload`; uses the
    master's own copy of the published timestamps, so reconstructed
    estimates are field-for-field identical to what the legacy payload
    would have pickled back.
    """
    pairs: list[tuple[str, tuple[TruthEstimate, ...]]] = []
    cursor = 0
    for claim_id in claim_ids:
        row = stack.row_of(claim_id)
        length = int(stack.lengths[row])
        times = stack.times[row, :length]
        estimates = tuple(
            TruthEstimate(
                claim_id=claim_id,
                timestamp=float(t),
                value=TruthValue(int(code)),
                confidence=float(confidence),
            )
            for t, code, confidence in zip(
                times,
                codes[cursor : cursor + length],
                confidences[cursor : cursor + length],
            )
        )
        cursor += length
        pairs.append((claim_id, estimates))
    if cursor != int(np.asarray(codes).size):
        raise ValueError(
            f"shard result carries {np.asarray(codes).size} estimates, "
            f"expected {cursor} for claims {list(claim_ids)}"
        )
    return tuple(pairs)


def streaming_push_payload(
    streaming: Any, reports: Sequence[Report]
) -> None:
    """Feed one task's report chunk into a streaming engine.

    Module-level so interval-mode tasks can carry it as a
    :class:`~repro.workqueue.task.PayloadSpec` (the SSTD009 discipline)
    instead of a closure over the engine.
    """
    for report in reports:
        streaming.push(report)
    return None


@dataclass
class TDJob:
    """One claim's truth-discovery job.

    Attributes:
        job_id: Stable identifier (the claim id).
        claim_id: The claim this job decodes.
        deadline: Soft deadline in seconds for processing one batch of
            this job's data (paper ``dl_j``).
        tasks_per_batch: How many tasks a data batch is split into; the
            paper keeps this small to bound initialization overhead
            (Section IV-C4).
    """

    job_id: str
    claim_id: str
    deadline: float = 10.0
    tasks_per_batch: int = 1
    reports_seen: int = 0
    batches_submitted: int = 0

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.deadline <= 0:
            raise ValueError("deadline must be > 0")
        if self.tasks_per_batch < 1:
            raise ValueError("tasks_per_batch must be >= 1")

    def make_tasks(
        self,
        reports: Sequence[Report],
        payload: Callable[..., Any] | None = None,
        payload_args: Sequence[Any] = (),
    ) -> list[Task]:
        """Split one batch of reports into Work Queue tasks.

        Data is divided equally between the job's tasks (Section IV-C4).
        ``payload`` must be a module-level callable (the
        :class:`~repro.workqueue.task.PayloadSpec` discipline — closures
        cannot cross a process boundary); each task carries
        ``PayloadSpec(payload, (*payload_args, chunk))``, so the task's
        report chunk arrives as the final argument and its return value
        becomes the task output.
        """
        self.reports_seen += len(reports)
        self.batches_submitted += 1
        n_tasks = min(self.tasks_per_batch, max(1, len(reports)))
        chunks: list[Sequence[Report]] = []
        if reports:
            size = len(reports) // n_tasks
            remainder = len(reports) % n_tasks
            start = 0
            for k in range(n_tasks):
                extra = 1 if k < remainder else 0
                chunks.append(reports[start : start + size + extra])
                start += size + extra
        else:
            chunks.append(())

        tasks = []
        for chunk in chunks:
            fn = None
            if payload is not None:
                fn = PayloadSpec(payload, (*payload_args, tuple(chunk)))
            tasks.append(
                Task(job_id=self.job_id, data_size=float(len(chunk)), fn=fn)
            )
        return tasks
