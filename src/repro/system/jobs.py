"""Truth Discovery (TD) jobs.

SSTD assigns each claim its own TD job (paper Section III-E): the job
owns the claim's report stream, is split into Work Queue tasks, and has
a soft deadline expressing the application's responsiveness requirement
(Section II).  The job is also the unit the control loop steers — priorities
are per-job, and WCET predictions are per-job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.acs import acs_sequence
from repro.core.sstd import ClaimTruthModel, SSTDConfig, batch_fit_decode
from repro.core.types import Report, TruthEstimate
from repro.workqueue.task import PayloadSpec, Task

__all__ = [
    "TDJob",
    "decode_claim_payload",
    "decode_shard_payload",
    "decode_task_spec",
    "shard_task_spec",
    "streaming_push_payload",
]


def decode_claim_payload(
    claim_id: str,
    reports: tuple[Report, ...],
    config: SSTDConfig,
    start: float | None = None,
    end: float | None = None,
) -> tuple[TruthEstimate, ...]:
    """Run one claim's full TD pipeline: ACS sequence → fit → decode.

    This is the unit of distribution (paper Section III-E) expressed as
    a *module-level* function, so it can be shipped to a worker process
    as a :class:`repro.workqueue.task.PayloadSpec` — closures cannot
    cross a pickle boundary.  All executors (simulated, threads,
    processes) run exactly this payload, which is what keeps their
    estimates bit-identical.
    """
    times, values = acs_sequence(reports, config.acs, start=start, end=end)
    model = ClaimTruthModel(claim_id, config)
    return model.fit_decode(times, values).estimates


def decode_task_spec(
    claim_id: str,
    reports: Sequence[Report],
    config: SSTDConfig,
    start: float | None = None,
    end: float | None = None,
) -> PayloadSpec:
    """Picklable payload spec for one claim's Truth Discovery job."""
    return PayloadSpec(
        decode_claim_payload, (claim_id, tuple(reports), config, start, end)
    )


def decode_shard_payload(
    claims: tuple[tuple[str, tuple[Report, ...]], ...],
    config: SSTDConfig,
    start: float | None = None,
    end: float | None = None,
) -> tuple[tuple[str, tuple[TruthEstimate, ...]], ...]:
    """Run the TD pipeline for a *shard* of claims in one task.

    One Work Queue task per claim pays pickle + dispatch + spawn
    overhead per claim; a shard amortizes that over many claims and
    feeds them all to one :func:`repro.core.sstd.batch_fit_decode` call,
    so the EM/decode recursions are batched too.  Returns one
    ``(claim_id, estimates)`` pair per claim — callers track progress
    per claim, not per task.  The batched kernel is row-deterministic,
    so shard composition never changes any claim's estimates.
    """
    items = []
    for claim_id, reports in claims:
        times, values = acs_sequence(
            reports, config.acs, start=start, end=end
        )
        items.append((claim_id, times, values))
    results = batch_fit_decode(items, config)
    return tuple((result.claim_id, result.estimates) for result in results)


def shard_task_spec(
    claims: Sequence[tuple[str, Sequence[Report]]],
    config: SSTDConfig,
    start: float | None = None,
    end: float | None = None,
) -> PayloadSpec:
    """Picklable payload spec for a multi-claim Truth Discovery shard."""
    frozen = tuple(
        (claim_id, tuple(reports)) for claim_id, reports in claims
    )
    return PayloadSpec(decode_shard_payload, (frozen, config, start, end))


def streaming_push_payload(
    streaming: Any, reports: Sequence[Report]
) -> None:
    """Feed one task's report chunk into a streaming engine.

    Module-level so interval-mode tasks can carry it as a
    :class:`~repro.workqueue.task.PayloadSpec` (the SSTD009 discipline)
    instead of a closure over the engine.
    """
    for report in reports:
        streaming.push(report)
    return None


@dataclass
class TDJob:
    """One claim's truth-discovery job.

    Attributes:
        job_id: Stable identifier (the claim id).
        claim_id: The claim this job decodes.
        deadline: Soft deadline in seconds for processing one batch of
            this job's data (paper ``dl_j``).
        tasks_per_batch: How many tasks a data batch is split into; the
            paper keeps this small to bound initialization overhead
            (Section IV-C4).
    """

    job_id: str
    claim_id: str
    deadline: float = 10.0
    tasks_per_batch: int = 1
    reports_seen: int = 0
    batches_submitted: int = 0

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.deadline <= 0:
            raise ValueError("deadline must be > 0")
        if self.tasks_per_batch < 1:
            raise ValueError("tasks_per_batch must be >= 1")

    def make_tasks(
        self,
        reports: Sequence[Report],
        payload: Callable[..., Any] | None = None,
        payload_args: Sequence[Any] = (),
    ) -> list[Task]:
        """Split one batch of reports into Work Queue tasks.

        Data is divided equally between the job's tasks (Section IV-C4).
        ``payload`` must be a module-level callable (the
        :class:`~repro.workqueue.task.PayloadSpec` discipline — closures
        cannot cross a process boundary); each task carries
        ``PayloadSpec(payload, (*payload_args, chunk))``, so the task's
        report chunk arrives as the final argument and its return value
        becomes the task output.
        """
        self.reports_seen += len(reports)
        self.batches_submitted += 1
        n_tasks = min(self.tasks_per_batch, max(1, len(reports)))
        chunks: list[Sequence[Report]] = []
        if reports:
            size = len(reports) // n_tasks
            remainder = len(reports) % n_tasks
            start = 0
            for k in range(n_tasks):
                extra = 1 if k < remainder else 0
                chunks.append(reports[start : start + size + extra])
                start += size + extra
        else:
            chunks.append(())

        tasks = []
        for chunk in chunks:
            fn = None
            if payload is not None:
                fn = PayloadSpec(payload, (*payload_args, tuple(chunk)))
            tasks.append(
                Task(job_id=self.job_id, data_size=float(len(chunk)), fn=fn)
            )
        return tasks
