"""The full SSTD system: streaming truth discovery on a simulated cluster.

This module wires every substrate together into the architecture of the
paper's Figure 2: a data stream is partitioned into per-claim TD jobs,
the Dynamic Task Manager spawns Work Queue tasks for them, the elastic
worker pool executes them on an HTCondor-style cluster, and the PID
control loop steers priorities and pool size against soft deadlines.

Two entry points:

- :meth:`DistributedSSTD.run_batch` — process a whole trace once;
  returns truth estimates (bit-identical to serial
  :class:`repro.core.sstd.SSTD`) plus timing metrics (makespan,
  speedup inputs for Figure 7, execution times for Figure 4).
- :meth:`DistributedSSTD.run_intervals` — replay the trace as N equal
  time intervals (the paper's Figure 6 setup); returns per-interval
  execution times and the deadline hit rate.
"""

from __future__ import annotations

import collections
import math
import os
from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.condor import CondorPool
from repro.cluster.failures import FailureConfig, FailureInjector
from repro.cluster.node import NodeSpec, uniform_pool
from repro.cluster.simulation import PeriodicTask, Simulator
from repro.control.feedback import FeedbackConfig, IntervalFeedbackLoop
from repro.control.wcet import WCETModel
from repro.core.sstd import SSTD, SSTDConfig, StreamingSSTD
from repro.core.types import Report, TruthEstimate
from repro.obs import Observability, VirtualClock, using
from repro.streams.trace import Trace
from repro.system.deadline import DeadlineTracker
from repro.system.dtm import DTMConfig, DynamicTaskManager
from repro.system.jobs import (
    TDJob,
    build_claim_stack,
    decode_task_spec,
    expand_shard_result,
    shard_task_spec,
    shm_shard_task_spec,
    streaming_push_payload,
)
from repro.workqueue.local import LocalWorkQueue
from repro.workqueue.master import WorkQueueMaster
from repro.workqueue.pool import ElasticWorkerPool
from repro.workqueue.process import ProcessWorkQueue
from repro.workqueue.task import CostModel, Task

__all__ = [
    "BACKENDS",
    "BatchRunResult",
    "DistributedSSTD",
    "IntervalRunResult",
    "SSTDSystemConfig",
]

#: Execution substrates: virtual-time simulation, GIL-shared threads,
#: or real OS processes (one Python interpreter per worker).
BACKENDS = ("simulated", "threads", "processes")


def _shard_job_id(shard: Sequence[str]) -> str:
    """Stable Work Queue job id for a shard of claims."""
    if len(shard) == 1:
        return shard[0]
    return f"{shard[0]}..{shard[-1]}"


def _effective_cores() -> int:
    """Cores this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


@dataclass(frozen=True, slots=True)
class SSTDSystemConfig:
    """Deployment shape of the distributed SSTD system.

    Attributes:
        n_workers: Initial worker-pool size.
        nodes: Cluster machines; defaults to a uniform pool big enough
            for ``max_workers`` (or 4x n_workers when unbounded).
        cost_model: Virtual-time cost of tasks (init/compute/transfer).
        sstd: Truth-discovery engine configuration.
        dtm: Control-plane configuration.
        control_enabled: Run the PID loop; off = static priorities.
        deadline: Default soft deadline per TD job batch (seconds).
        tasks_per_job: Tasks each job batch is split into.
        max_workers: Elastic-pool ceiling (None = cluster capacity).
        seed: Seed for dispatch randomization.
        streaming_retrain_every: Retrain cadence (in interval ticks) of
            the streaming engine used by interval mode; small values
            track truth flips promptly at higher compute cost.
        failures: Enable node failure injection (nodes need
            ``mtbf_seconds`` in their specs, or set ``default_mtbf``);
            the system re-queues lost tasks and replaces dead workers.
        backend: Execution substrate — ``"simulated"`` (virtual-time
            cluster, default), ``"threads"``
            (:class:`~repro.workqueue.local.LocalWorkQueue`), or
            ``"processes"``
            (:class:`~repro.workqueue.process.ProcessWorkQueue`, real
            cores).  The real backends run batched
            ``decode_shard_payload`` tasks on wall time; the PID control
            plane and failure injection only apply to the simulated
            backend.
        claims_per_shard: How many claims each real-backend Work Queue
            task covers.  One task per claim (``1``) pays pickle +
            dispatch + interpreter overhead per claim; a shard amortizes
            it and lets the claims share one batched HMM kernel
            invocation, whose per-timestep cost is flat in batch width —
            wider shards are strictly cheaper compute.  ``None``
            (default) auto-sizes to one shard per usable execution lane
            (``min(n_workers, available cores)``): slicing finer than
            the hardware's parallelism only multiplies the kernel's
            O(T) interpreter cost without adding concurrency.  Shard
            composition never changes estimates (the batched kernel is
            row-deterministic), so this is purely a throughput knob.
            The simulated backend keeps one job per claim: jobs are the
            unit its control loop steers.
        zero_copy: Ship shard inputs through the shared-memory data
            plane (:mod:`repro.system.shm`): the master computes every
            claim's ACS observation stack once, publishes it into a
            named ``multiprocessing.shared_memory`` segment, and each
            task carries only claim ids + row offsets + the segment
            handle — O(claims) pickled bytes instead of O(reports).
            Workers attach zero-copy read-only views and return compact
            ``(state codes, confidences)`` arrays that the master
            expands back into estimates; results are bit-identical to
            the pickled-report path.  ``None`` (default) enables it for
            the ``processes`` backend (where serialization is the tax
            being killed) and keeps the in-memory path for ``threads``;
            ``True``/``False`` force it.  Where shared memory is
            unavailable the plane degrades to an inline-bytes payload
            with the same layout.  The simulated backend is unaffected.
        drain_timeout: Wall-clock cap (seconds) on one ``drain`` of the
            real backends before the run aborts with ``TimeoutError``.
        observability: Record spans and metrics for the run (exposed on
            :attr:`DistributedSSTD.obs` afterwards, exportable with
            :func:`repro.obs.write_chrome_trace`).  ``True``/``False``
            force it; ``None`` (default) defers to the ``REPRO_TRACE``
            environment variable.  The simulated backend records on the
            virtual clock, the real backends on wall time.
        feedback: Closed-loop control for the *real-backend* interval
            replay (:class:`~repro.control.feedback.FeedbackConfig`):
            a PID turns per-interval lateness into a headroom signal,
            and deadline-aware admission control defers (or, opt-in,
            sheds) claims that the observed p95 decode cost says cannot
            finish within the deadline.  ``None`` (default) keeps the
            open-loop behaviour — every dirty claim is decoded every
            interval — so existing runs are bit-identical.  The
            simulated backend's control loop is configured via ``dtm``
            instead.
    """

    n_workers: int = 4
    nodes: tuple[NodeSpec, ...] | None = None
    cost_model: CostModel = field(default_factory=CostModel)
    sstd: SSTDConfig = field(default_factory=SSTDConfig)
    dtm: DTMConfig = field(default_factory=DTMConfig)
    control_enabled: bool = True
    deadline: float = 10.0
    tasks_per_job: int = 1
    max_workers: int | None = None
    seed: int = 0
    streaming_retrain_every: int = 5
    failures: FailureConfig | None = None
    backend: str = "simulated"
    drain_timeout: float = 600.0
    observability: bool | None = None
    claims_per_shard: int | None = None
    zero_copy: bool | None = None
    feedback: FeedbackConfig | None = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.deadline <= 0:
            raise ValueError("deadline must be > 0")
        if self.tasks_per_job < 1:
            raise ValueError("tasks_per_job must be >= 1")
        if self.claims_per_shard is not None and self.claims_per_shard < 1:
            raise ValueError("claims_per_shard must be >= 1 (or None for auto)")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.drain_timeout <= 0:
            raise ValueError("drain_timeout must be > 0")


@dataclass(frozen=True, slots=True)
class BatchRunResult:
    """Outcome of a batch run.

    On the real backends claims are dispatched in shards, so ``n_tasks``
    (shards executed) can be smaller than ``n_jobs`` (claims decoded).
    ``payload_bytes_per_task`` / ``result_bytes_per_task`` average the
    serialized bytes each task actually shipped across the process
    boundary (``None`` on executors that never serialize — simulated and
    threads); the parallel-backend benchmark gates the payload number.
    """

    estimates: tuple[TruthEstimate, ...]
    makespan: float
    n_jobs: int
    n_tasks: int
    total_busy_time: float
    worker_count: int
    peak_worker_count: int
    payload_bytes_per_task: float | None = None
    result_bytes_per_task: float | None = None

    @property
    def utilization(self) -> float:
        """Busy time over (makespan x peak workers); 1.0 is perfect packing."""
        denom = self.makespan * self.peak_worker_count
        return self.total_busy_time / denom if denom > 0 else 0.0


@dataclass(frozen=True, slots=True)
class IntervalRunResult:
    """Outcome of an interval-replay run (Figure 6)."""

    tracker: DeadlineTracker
    estimates: tuple[TruthEstimate, ...]
    final_worker_count: int

    @property
    def hit_rate(self) -> float:
        return self.tracker.hit_rate

    @property
    def execution_times(self) -> list[float]:
        return [r.execution_time for r in self.tracker.records]


class DistributedSSTD:
    """SSTD deployed on the simulated Work Queue / HTCondor stack."""

    name = "SSTD"

    def __init__(self, config: SSTDSystemConfig | None = None) -> None:
        self.config = config or SSTDSystemConfig()
        #: Recorder of the most recent run; replaced at the start of
        #: each run so traces never mix runs.
        self.obs = Observability.disabled()

    # ------------------------------------------------------------------
    # Deployment plumbing
    # ------------------------------------------------------------------
    def _build(
        self,
    ) -> tuple[Simulator, WorkQueueMaster, ElasticWorkerPool, DynamicTaskManager]:
        config = self.config
        simulator = Simulator()
        if config.nodes is not None:
            nodes = list(config.nodes)
        else:
            ceiling = config.max_workers or config.n_workers * 4
            nodes = uniform_pool(max(1, (ceiling + 3) // 4), cores=4)
        condor = CondorPool(nodes)
        self.obs = Observability.resolve(
            config.observability, clock=VirtualClock(simulator)
        )
        master = WorkQueueMaster(simulator, rng=config.seed, obs=self.obs)
        pool = ElasticWorkerPool(
            simulator,
            master,
            condor,
            config.cost_model,
            max_workers=config.max_workers,
            min_dwell=config.dtm.scale_dwell,
        )
        pool.scale_to(config.n_workers)
        if config.failures is not None:
            injector = FailureInjector(
                simulator, condor, master, config.failures, rng=config.seed
            )
            injector.start()
            # Replace dead workers as machines recover: the elastic pool
            # tops itself back up to at least the configured size.
            PeriodicTask(
                simulator,
                max(config.failures.mean_repair_time / 4.0, 1.0),
                lambda: pool.scale_to(max(pool.size, config.n_workers)),
            )
        wcet = WCETModel(
            init_time=config.cost_model.init_time,
            theta1=config.cost_model.unit_cost,
            theta2=config.cost_model.unit_cost
            + config.cost_model.transfer_cost,
        )
        dtm = DynamicTaskManager(simulator, master, pool, wcet, config.dtm)
        return simulator, master, pool, dtm

    # ------------------------------------------------------------------
    # Batch mode
    # ------------------------------------------------------------------
    def run_batch(
        self,
        reports: Sequence[Report],
        start: float | None = None,
        end: float | None = None,
    ) -> BatchRunResult:
        """Process a full trace; estimates match the serial engine exactly."""
        if self.config.backend != "simulated":
            return self._run_batch_real(reports, start, end)
        simulator, master, pool, dtm = self._build()
        if self.config.control_enabled:
            dtm.start()

        engine = SSTD(self.config.sstd)
        grouped = engine.group_reports(reports)
        estimates: list[TruthEstimate] = []

        run_start = simulator.now
        with using(self.obs):
            n_tasks = 0
            for claim_id in sorted(grouped):
                job = TDJob(
                    job_id=claim_id,
                    claim_id=claim_id,
                    deadline=self.config.deadline,
                    tasks_per_batch=self.config.tasks_per_job,
                )
                dtm.register_job(job)
                tasks = job.make_tasks(grouped[claim_id])
                # The final task of each job carries the decode payload so
                # the truth result materializes when the job's data is
                # processed.  It is the same picklable spec the real
                # backends use.
                tasks[-1].fn = decode_task_spec(
                    claim_id, grouped[claim_id], self.config.sstd, start, end
                )
                for task in tasks:
                    master.submit(task)
                n_tasks += len(tasks)

            master.wait_all()
            dtm.stop()
        if self.obs.enabled:
            self.obs.tracer.record_span(
                "system.run_batch",
                start=run_start,
                end=simulator.now,
                track="system",
                backend=self.config.backend,
                n_jobs=len(grouped),
                n_tasks=n_tasks,
            )
        for result in master.results:
            if result.output:
                estimates.extend(result.output)
        estimates.sort(key=lambda e: (e.claim_id, e.timestamp))
        peak = max(
            [self.config.n_workers, pool.size]
            + [size for _, size in dtm.pool_size_log]
        )
        return BatchRunResult(
            estimates=tuple(estimates),
            makespan=simulator.now,
            n_jobs=len(grouped),
            n_tasks=n_tasks,
            total_busy_time=sum(
                account.busy_time for account in master.jobs.values()
            ),
            worker_count=pool.size,
            peak_worker_count=peak,
        )

    # ------------------------------------------------------------------
    # Real backends (threads / processes)
    # ------------------------------------------------------------------
    def _make_executor(
        self, n_workers: int | None = None
    ) -> LocalWorkQueue | ProcessWorkQueue:
        """The wall-time executor selected by ``config.backend``.

        ``n_workers`` caps the pool below the configured size when the
        run has fewer tasks than workers — a worker that can never
        receive a task only costs spawn time.
        """
        self.obs = Observability.resolve(self.config.observability)
        if n_workers is None:
            n_workers = self.config.n_workers
        if self.config.backend == "threads":
            return LocalWorkQueue(
                n_workers=n_workers,
                rng=self.config.seed,
                obs=self.obs,
            )
        return ProcessWorkQueue(
            n_workers=n_workers,
            rng=self.config.seed,
            obs=self.obs,
        )

    @staticmethod
    def _check_failures(results: Sequence) -> None:
        """Raise when any TD task failed; failures are data until here."""
        failed = [r for r in results if not r.ok]
        if failed:
            first = failed[0].error
            detail = f"\n{first.traceback}" if first.traceback else ""
            raise RuntimeError(
                f"{len(failed)} TD task(s) failed; first error on job "
                f"{failed[0].job_id!r}: {first}{detail}"
            )

    def _use_zero_copy(self) -> bool:
        """Resolve the data-plane choice for the real backends.

        ``None`` (auto) turns the shared-memory plane on exactly where
        serialization is the tax being paid — the process backend; the
        thread backend shares the master's heap, so its legacy in-memory
        payloads are already zero-copy.
        """
        if self.config.zero_copy is not None:
            return self.config.zero_copy
        return self.config.backend == "processes"

    @staticmethod
    def _mean_bytes(sizes: Sequence[int | None]) -> float | None:
        """Mean of the non-``None`` sizes; ``None`` when nothing shipped."""
        shipped = [size for size in sizes if size is not None]
        if not shipped:
            return None
        return sum(shipped) / len(shipped)

    def _claims_per_shard(self, n_claims: int) -> int:
        """Resolve the shard size: explicit config or one shard per lane.

        A lane is an execution slot that can really run concurrently —
        ``min(n_workers, cores this process may use)``.  The batched
        kernel's per-timestep interpreter cost is flat in batch width,
        so splitting a lane's claims into several shards multiplies
        that cost for no extra parallelism; one maximal shard per lane
        is the throughput optimum.
        """
        if self.config.claims_per_shard is not None:
            return self.config.claims_per_shard
        lanes = max(1, min(self.config.n_workers, _effective_cores()))
        return max(1, math.ceil(n_claims / lanes))

    @staticmethod
    def _make_shards(
        claim_ids: Sequence[str], per_shard: int
    ) -> list[list[str]]:
        """Contiguous shards of sorted claims, each ``per_shard`` wide."""
        return [
            list(claim_ids[i : i + per_shard])
            for i in range(0, len(claim_ids), per_shard)
        ]

    def _run_batch_real(
        self,
        reports: Sequence[Report],
        start: float | None,
        end: float | None,
    ) -> BatchRunResult:
        """Batch mode on a real executor: one task per *shard* of claims.

        ``tasks_per_job`` does not apply here — a claim's decode is an
        indivisible unit of real compute.  Claims are grouped into
        shards of ``claims_per_shard`` (auto ≈ two shards per worker);
        each task runs one ``decode_shard_payload``, so its claims share
        one batched kernel invocation and one round of pickle/dispatch
        overhead.
        """
        config = self.config
        grouped = SSTD(config.sstd).group_reports(reports)
        claim_ids = sorted(grouped)
        shards = self._make_shards(
            claim_ids, self._claims_per_shard(len(claim_ids))
        )
        zero_copy = self._use_zero_copy()
        n_workers = min(config.n_workers, max(1, len(shards)))
        stack = None
        owner = None
        shard_claims: dict[str, list[str]] = {}
        executor = self._make_executor(n_workers)
        try:
            clock_start = self.obs.clock.now()
            with using(self.obs):
                if zero_copy:
                    stack = build_claim_stack(
                        [(c, grouped[c]) for c in claim_ids],
                        config.sstd,
                        start,
                        end,
                    )
                    owner = stack.publish()
                for shard in shards:
                    job_id = _shard_job_id(shard)
                    shard_claims[job_id] = shard
                    if zero_copy:
                        fn = shm_shard_task_spec(
                            stack, shard, owner.handle, config.sstd
                        )
                    else:
                        fn = shard_task_spec(
                            [(c, grouped[c]) for c in shard],
                            config.sstd,
                            start,
                            end,
                        )
                    executor.submit(
                        Task(
                            job_id=job_id,
                            data_size=float(
                                sum(len(grouped[c]) for c in shard)
                            ),
                            fn=fn,
                        )
                    )
                submitted_at = self.obs.clock.now()
                results = executor.drain(timeout=config.drain_timeout)
        finally:
            executor.shutdown()
            if owner is not None:
                owner.close_and_unlink()
        makespan = self.obs.clock.now() - clock_start
        if self.obs.enabled:
            self.obs.tracer.record_span(
                "system.submit",
                start=clock_start,
                end=submitted_at,
                track="system",
                n_tasks=len(shards),
                zero_copy=zero_copy,
            )
            self.obs.tracer.record_span(
                "system.run_batch",
                start=clock_start,
                end=clock_start + makespan,
                track="system",
                backend=config.backend,
                n_jobs=len(grouped),
                n_tasks=len(results),
            )
        self._check_failures(results)

        estimates: list[TruthEstimate] = []
        for result in results:
            if zero_copy:
                codes, confidences = result.output
                pairs = expand_shard_result(
                    stack, shard_claims[result.job_id], codes, confidences
                )
            else:
                pairs = result.output or ()
            for _claim_id, claim_estimates in pairs:
                estimates.extend(claim_estimates)
        estimates.sort(key=lambda e: (e.claim_id, e.timestamp))
        return BatchRunResult(
            estimates=tuple(estimates),
            makespan=makespan,
            n_jobs=len(grouped),
            n_tasks=len(results),
            total_busy_time=sum(r.wall_time for r in results),
            worker_count=n_workers,
            peak_worker_count=n_workers,
            payload_bytes_per_task=self._mean_bytes(
                [r.payload_bytes for r in results]
            ),
            result_bytes_per_task=self._mean_bytes(
                [r.result_bytes for r in results]
            ),
        )

    def _run_intervals_real(
        self,
        trace: Trace,
        n_intervals: int,
        deadline: float,
        compute_estimates: bool,
    ) -> IntervalRunResult:
        """Interval replay on a real executor.

        Each interval re-decodes every claim that received new reports,
        over the claim's cumulative history.  Claims are dispatched in
        ``claims_per_shard`` shards (one ``decode_shard_payload`` task
        each), and the wall-clock time for the interval's shards to
        drain is recorded.  Claims without new data are not re-decoded,
        and each claim's estimates are emitted at most once — the
        ``emitted_until`` watermark is tracked per claim, not per task,
        so shard composition never duplicates or drops an estimate.

        With ``config.feedback`` set, an :class:`IntervalFeedbackLoop`
        sits in front of dispatch: dirty claims (new reports, or work
        deferred earlier) pass through admission control, deferred
        claims stay dirty for the next interval (cumulative re-decode
        makes deferral lossless — a later decode covers the same
        reports), and shed claims leave the dirty set until new reports
        arrive.  Per-interval lateness feeds the PID whose headroom
        signal scales the next admission budget.
        """
        config = self.config
        tracker = DeadlineTracker(deadline=deadline)
        estimates: list[TruthEstimate] = []
        zero_copy = self._use_zero_copy()

        span = trace.end - trace.start
        if span <= 0:
            raise ValueError("trace must span a positive duration")
        interval_len = span / n_intervals

        history: dict[str, list[Report]] = collections.defaultdict(list)
        emitted_until: dict[str, float] = {}
        dirty: set[str] = set()
        # The executor installs the run's recorder on self.obs; the loop
        # must be built after it so its instrumentation lands there too.
        loop: IntervalFeedbackLoop | None = None
        executor = self._make_executor()
        try:
            if config.feedback is not None:
                loop = IntervalFeedbackLoop(
                    deadline, config.feedback, obs=self.obs
                )
            for index in range(n_intervals):
                lo = trace.start + index * interval_len
                hi = trace.start + (index + 1) * interval_len
                if index == n_intervals - 1:
                    hi = trace.end + 1e-9
                batch = trace.reports_between(lo, hi)

                by_claim: dict[str, list[Report]] = collections.defaultdict(list)
                for report in batch:
                    by_claim[report.claim_id].append(report)

                interval_start = self.obs.clock.now()
                stack = None
                owner = None
                shard_claims: dict[str, list[str]] = {}
                n_deferred = 0
                n_shed = 0
                try:
                    with using(self.obs):
                        for claim_id, new_reports in sorted(by_claim.items()):
                            history[claim_id].extend(new_reports)
                        if loop is not None:
                            dirty.update(by_claim)
                            decision = loop.plan(
                                sorted(dirty), config.n_workers
                            )
                            claim_ids = sorted(decision.admitted)
                            dirty.difference_update(decision.admitted)
                            dirty.difference_update(decision.shed)
                            n_deferred = len(decision.deferred)
                            n_shed = len(decision.shed)
                        else:
                            claim_ids = sorted(by_claim)
                        shards = self._make_shards(
                            claim_ids, self._claims_per_shard(len(claim_ids))
                        )
                        if zero_copy and claim_ids:
                            stack = build_claim_stack(
                                [(c, history[c]) for c in claim_ids],
                                config.sstd,
                                trace.start,
                                hi,
                            )
                            owner = stack.publish()
                        for shard in shards:
                            job_id = _shard_job_id(shard)
                            shard_claims[job_id] = shard
                            if stack is not None:
                                fn = shm_shard_task_spec(
                                    stack, shard, owner.handle, config.sstd
                                )
                            else:
                                fn = shard_task_spec(
                                    [(c, history[c]) for c in shard],
                                    config.sstd,
                                    trace.start,
                                    hi,
                                )
                            executor.submit(
                                Task(
                                    job_id=job_id,
                                    data_size=float(
                                        sum(len(history[c]) for c in shard)
                                    ),
                                    fn=fn,
                                )
                            )
                        results = executor.drain(timeout=config.drain_timeout)
                finally:
                    if owner is not None:
                        owner.close_and_unlink()
                execution_time = self.obs.clock.now() - interval_start
                if self.obs.enabled:
                    self.obs.tracer.record_span(
                        "system.interval",
                        start=interval_start,
                        end=interval_start + execution_time,
                        track="system",
                        index=index,
                        n_reports=len(batch),
                    )
                self._check_failures(results)
                if loop is not None:
                    # Exact per-claim costs (shard wall time amortized
                    # over its width) drive the next admission budget.
                    loop.observe(
                        execution_time,
                        [
                            r.wall_time
                            / max(1, len(shard_claims[r.job_id]))
                            for r in results
                        ],
                        busy_time=sum(r.wall_time for r in results),
                    )
                if compute_estimates:
                    for result in results:
                        if stack is not None:
                            codes, confidences = result.output
                            pairs = expand_shard_result(
                                stack,
                                shard_claims[result.job_id],
                                codes,
                                confidences,
                            )
                        else:
                            pairs = result.output or ()
                        for claim_id, claim_estimates in pairs:
                            since = emitted_until.get(
                                claim_id, float("-inf")
                            )
                            estimates.extend(
                                e
                                for e in claim_estimates
                                if since < e.timestamp <= hi
                            )
                            emitted_until[claim_id] = hi
                tracker.record(
                    index,
                    len(batch),
                    execution_time,
                    n_deferred=n_deferred,
                    n_shed=n_shed,
                )
        finally:
            executor.shutdown()
            if loop is not None:
                loop.close()
        estimates.sort(key=lambda e: (e.claim_id, e.timestamp))
        return IntervalRunResult(
            tracker=tracker,
            estimates=tuple(estimates),
            final_worker_count=config.n_workers,
        )

    # ------------------------------------------------------------------
    # Interval mode (Figure 6)
    # ------------------------------------------------------------------
    def run_intervals(
        self,
        trace: Trace,
        n_intervals: int = 100,
        deadline: float | None = None,
        compute_estimates: bool = False,
    ) -> IntervalRunResult:
        """Replay ``trace`` as equal time intervals under a deadline.

        For each interval the system submits every claim's new reports
        as TD tasks, runs the (virtual-time) cluster until the interval's
        work drains, and records the execution time against the deadline.
        Job priorities, controller state, and the worker pool persist
        across intervals, so the control loop *learns* the traffic shape
        — the mechanism behind SSTD's Figure 6 advantage.
        """
        if n_intervals < 1:
            raise ValueError("n_intervals must be >= 1")
        deadline = deadline or self.config.deadline
        if self.config.backend != "simulated":
            return self._run_intervals_real(
                trace, n_intervals, deadline, compute_estimates
            )
        simulator, master, pool, dtm = self._build()
        if self.config.control_enabled:
            dtm.start()

        tracker = DeadlineTracker(deadline=deadline)
        streaming = (
            StreamingSSTD(
                self.config.sstd,
                retrain_every=self.config.streaming_retrain_every,
            )
            if compute_estimates
            else None
        )
        estimates: list[TruthEstimate] = []

        span = trace.end - trace.start
        if span <= 0:
            raise ValueError("trace must span a positive duration")
        interval_len = span / n_intervals

        jobs: dict[str, TDJob] = {}
        for index in range(n_intervals):
            lo = trace.start + index * interval_len
            hi = trace.start + (index + 1) * interval_len
            if index == n_intervals - 1:
                hi = trace.end + 1e-9
            batch = trace.reports_between(lo, hi)

            by_claim: dict[str, list[Report]] = collections.defaultdict(list)
            for report in batch:
                by_claim[report.claim_id].append(report)

            interval_start = simulator.now
            for claim_id in sorted(by_claim):
                job = jobs.get(claim_id)
                if job is None:
                    job = TDJob(
                        job_id=claim_id,
                        claim_id=claim_id,
                        deadline=deadline,
                        tasks_per_batch=self.config.tasks_per_job,
                    )
                    jobs[claim_id] = job
                    dtm.register_job(job)
                payload = None
                payload_args: tuple = ()
                if streaming is not None:
                    payload = streaming_push_payload
                    payload_args = (streaming,)
                tasks = job.make_tasks(
                    by_claim[claim_id], payload, payload_args
                )
                for task in tasks:
                    master.submit(task)

            with using(self.obs):
                master.wait_all()
                if streaming is not None:
                    estimates.extend(streaming.tick(hi))
            execution_time = simulator.now - interval_start
            if self.obs.enabled:
                self.obs.tracer.record_span(
                    "system.interval",
                    start=interval_start,
                    end=simulator.now,
                    track="system",
                    index=index,
                    n_reports=len(batch),
                )
            tracker.record(index, len(batch), execution_time)
            # Reset per-job accounting for the next interval's measurement.
            for account in master.jobs.values():
                account.first_submit_at = simulator.now

        dtm.stop()
        return IntervalRunResult(
            tracker=tracker,
            estimates=tuple(estimates),
            final_worker_count=pool.size,
        )
