"""Zero-copy shared-memory data plane for the process backend.

The process backend's original shard payloads pickled every report stack
through the task queue: O(reports) bytes serialized per task, paid again
on every retry.  This module gives the master a way to *publish* large
read-only arrays once — into a named ``multiprocessing.shared_memory``
segment — so a task ships only a :class:`SegmentHandle` (segment name +
per-array dtype/shape/offset specs), and workers :func:`attach` zero-copy
read-only views onto the same physical pages.

Design points:

- **One segment per run scope.**  The master packs all arrays for a
  batch (or one replay interval) into a single segment, 64-byte aligned,
  and owns its lifecycle through :class:`SegmentOwner`: create → publish
  → (workers attach/detach per task) → ``close_and_unlink`` in a
  ``finally`` when the scope ends, so interrupts and failed drains still
  reclaim ``/dev/shm``.
- **Plain-bytes fallback.**  Where POSIX shared memory is unavailable
  (or force-disabled with ``REPRO_SHM=0``), :func:`publish_arrays`
  degrades to a handle that carries the packed buffer inline as
  ``bytes``.  The payload then travels with each task pickle — no longer
  zero-copy, but the same compact contiguous layout and the identical
  attach/view API, so the decode path is byte-for-byte the same.
- **Read-only views.**  Attached arrays are never writable; workers
  cannot corrupt a segment other shard tasks are concurrently reading.
- **Resource-tracker hygiene.**  On CPython < 3.13 attaching registers
  the segment with the ``multiprocessing`` resource tracker, and which
  tracker that is depends on fork order: a worker forked *after* the
  master's tracker started shares it (registration is a set no-op), but
  a worker forked *before* — the normal case here, since the executor
  spawns before the first publish — lazily starts its **own** tracker,
  which then warns about a "leaked" segment at exit and double-races
  the unlink.  :func:`attach` therefore suppresses registration
  entirely when attaching from a process that did not create the
  segment (the creator pid is part of the name) — the 3.13 ``track=
  False`` semantics, implemented for 3.10-3.12.  Attach-side
  ``unregister`` calls (the other common workaround) are deliberately
  absent: with a shared tracker they would strip the owner's
  registration.  The owner keeps its registration, so segments are
  reclaimed by the tracker even if the master dies before
  ``close_and_unlink``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

import numpy as np

__all__ = [
    "ArraySpec",
    "AttachedSegment",
    "SEGMENT_PREFIX",
    "SegmentHandle",
    "SegmentOwner",
    "attach",
    "publish_arrays",
    "shm_available",
]

#: ``/dev/shm`` entries created by this module start with this prefix;
#: the tier-1 leak fixture and operators grep for it.
SEGMENT_PREFIX = "repro_shm_"

_ALIGNMENT = 64


def _lazy_close(segment) -> None:
    """Close a mapping even while live views still reference its buffer.

    ``SharedMemory.close()`` raises ``BufferError`` when numpy views
    still export the mmap's buffer — and would raise it *again* from
    ``__del__`` at GC, as an unraisable warning.  Dropping the mapping
    reference instead lets the mmap's C deallocator unmap silently when
    the last view dies; the second ``close()`` then just releases the
    file descriptor.
    """
    try:
        segment.close()
    except BufferError:
        segment._mmap = None  # deliberate: hand the unmap to the C dealloc
        try:
            segment.close()
        except (BufferError, OSError):
            pass  # deliberate: nothing left we can release eagerly


def shm_available() -> bool:
    """Whether POSIX shared memory can be used (``REPRO_SHM=0`` forces off)."""
    if os.environ.get("REPRO_SHM", "").strip().lower() in {"0", "off", "false"}:
        return False
    try:
        from multiprocessing import shared_memory
    except ImportError:
        return False
    return hasattr(shared_memory, "SharedMemory")


@dataclass(frozen=True, slots=True)
class ArraySpec:
    """Location of one array inside a published segment.

    Attributes:
        key: Name the array was published under.
        offset: Byte offset of the array's first element.
        shape: Array shape.
        dtype: Numpy dtype string (``np.dtype(...).str`` round-trips).
    """

    key: str
    offset: int
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return int(np.dtype(self.dtype).itemsize) * count


@dataclass(frozen=True, slots=True)
class SegmentHandle:
    """Picklable reference to a published segment.

    ``kind == "shm"`` names a shared-memory segment; ``kind == "bytes"``
    carries the packed buffer inline (the fallback).  Either way the
    handle plus :func:`attach` reconstructs every published array.
    """

    kind: str
    name: str | None
    size: int
    specs: tuple[ArraySpec, ...]
    payload: bytes | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("shm", "bytes"):
            raise ValueError(f"kind must be 'shm' or 'bytes', got {self.kind!r}")
        if self.kind == "shm" and not self.name:
            raise ValueError("shm handles need a segment name")
        if self.kind == "bytes" and self.payload is None:
            raise ValueError("bytes handles need an inline payload")

    def spec(self, key: str) -> ArraySpec:
        for candidate in self.specs:
            if candidate.key == key:
                return candidate
        raise KeyError(f"no array {key!r} in segment (have {[s.key for s in self.specs]})")


class SegmentOwner:
    """Master-side owner of one published segment.

    ``close_and_unlink`` is idempotent and safe to call from ``finally``
    blocks while workers may still hold attachments: POSIX removes the
    name immediately and frees the pages when the last mapping closes.
    """

    __slots__ = ("handle", "_segment", "_released")

    def __init__(self, handle: SegmentHandle, segment: object | None) -> None:
        self.handle = handle
        self._segment = segment
        self._released = False

    @property
    def nbytes(self) -> int:
        return self.handle.size

    def close_and_unlink(self) -> None:
        """Release the mapping and remove the segment name (idempotent)."""
        if self._released:
            return
        self._released = True
        segment = self._segment
        self._segment = None
        if segment is None:
            return  # bytes fallback: nothing OS-level to reclaim
        _lazy_close(segment)
        try:
            segment.unlink()
        except FileNotFoundError:
            pass  # deliberate: already unlinked (double-cleanup race)

    def __del__(self) -> None:  # best-effort backstop; runs are explicit
        try:
            self.close_and_unlink()
        except (OSError, ValueError):
            pass  # deliberate: interpreter teardown may have closed handles


class AttachedSegment:
    """Worker-side view of a published segment (context manager).

    Arrays returned by :meth:`array` are zero-copy read-only views over
    the segment; they are only valid inside the ``with`` block.  Callers
    must copy anything that outlives the attachment (and drop their view
    references before exit, or the close falls back to lazy unmapping).
    """

    __slots__ = ("_handle", "_segment", "_buffer")

    def __init__(self, handle: SegmentHandle, segment: object | None, buffer) -> None:
        self._handle = handle
        self._segment = segment
        self._buffer = buffer

    def array(self, key: str) -> np.ndarray:
        """Read-only ndarray view of the array published under ``key``."""
        if self._buffer is None:
            raise ValueError("segment is closed")
        spec = self._handle.spec(key)
        dtype = np.dtype(spec.dtype)
        count = spec.nbytes // dtype.itemsize if dtype.itemsize else 0
        view = np.frombuffer(
            self._buffer, dtype=dtype, count=count, offset=spec.offset
        ).reshape(spec.shape)
        view.setflags(write=False)
        return view

    def close(self) -> None:
        self._buffer = None
        segment = self._segment
        self._segment = None
        if segment is None:
            return
        _lazy_close(segment)

    def __enter__(self) -> "AttachedSegment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _segment_name() -> str:
    """A fresh segment name: prefix + pid + random suffix."""
    return f"{SEGMENT_PREFIX}{os.getpid()}_{os.urandom(4).hex()}"


def _pack_layout(
    arrays: Mapping[str, np.ndarray],
) -> tuple[list[tuple[ArraySpec, np.ndarray]], int]:
    """Contiguous aligned layout for ``arrays``; returns specs + total size."""
    packed: list[tuple[ArraySpec, np.ndarray]] = []
    offset = 0
    for key, value in arrays.items():
        array = np.ascontiguousarray(value)
        offset = ((offset + _ALIGNMENT - 1) // _ALIGNMENT) * _ALIGNMENT
        spec = ArraySpec(
            key=key,
            offset=offset,
            shape=tuple(int(d) for d in array.shape),
            dtype=np.dtype(array.dtype).str,
        )
        packed.append((spec, array))
        offset += array.nbytes
    return packed, max(offset, 1)


def publish_arrays(arrays: Mapping[str, np.ndarray]) -> SegmentOwner:
    """Publish named arrays into one segment; returns the owning handle.

    Prefers a named shared-memory segment (zero-copy attach); degrades
    to the inline-``bytes`` handle when shared memory is unavailable or
    segment creation fails.  Iteration order of ``arrays`` fixes the
    layout, so publish from plain dicts/sequences, never sets.
    """
    packed, total = _pack_layout(arrays)
    if shm_available():
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(
                name=_segment_name(), create=True, size=total
            )
        except (OSError, ValueError):
            segment = None
        if segment is not None:
            for spec, array in packed:
                target = np.frombuffer(
                    segment.buf,
                    dtype=np.dtype(spec.dtype),
                    count=array.size,
                    offset=spec.offset,
                ).reshape(spec.shape)
                target[...] = array
                del target  # release the exported buffer before any close
            handle = SegmentHandle(
                kind="shm",
                name=segment.name,
                size=total,
                specs=tuple(spec for spec, _ in packed),
            )
            return SegmentOwner(handle, segment)
    blob = bytearray(total)
    for spec, array in packed:
        blob[spec.offset : spec.offset + array.nbytes] = array.tobytes()
    handle = SegmentHandle(
        kind="bytes",
        name=None,
        size=total,
        specs=tuple(spec for spec, _ in packed),
        payload=bytes(blob),
    )
    return SegmentOwner(handle, None)


def _creator_pid(name: str) -> int | None:
    """Pid of the process that created a ``repro_shm_`` segment, if parseable."""
    if not name.startswith(SEGMENT_PREFIX):
        return None
    head = name[len(SEGMENT_PREFIX) :].split("_", 1)[0]
    return int(head) if head.isdigit() else None


def _attach_untracked(name: str):
    """Open an existing segment without resource-tracker registration.

    Foreign-process attaches must not register: a worker forked before
    the master's tracker existed would lazily start a second tracker
    whose cache is never drained (``close()`` does not unregister on
    CPython < 3.13), producing spurious leak warnings at worker exit.
    Python 3.13 exposes this as ``SharedMemory(..., track=False)``; on
    3.10-3.12 the only seam is swapping out ``register`` for the
    duration of the constructor.  Workers are single-threaded task
    loops, so the swap cannot race another registration.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register

    def _skip(res_name, rtype, _original=original):
        if rtype == "shared_memory":
            return None
        return _original(res_name, rtype)

    resource_tracker.register = _skip
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach(handle: SegmentHandle) -> AttachedSegment:
    """Attach to a published segment; use as a context manager."""
    if handle.kind == "bytes":
        return AttachedSegment(handle, None, handle.payload)
    if _creator_pid(handle.name or "") != os.getpid():
        segment = _attach_untracked(handle.name)
    else:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=handle.name)
    return AttachedSegment(handle, segment, segment.buf)
