"""End-to-end social sensing application (the paper's Figure 2, runnable).

Wires every layer into one object: raw tweets come in, truth timelines
and source diagnostics come out.

    tweets -> TweetPipeline -> StreamingSSTD engine(s) -> estimates
                                   |                         |
                        DeadlineTracker (QoS)        ReliabilityEstimator

The application consumes time-ordered batches (e.g. from a
:class:`~repro.streams.replay.StreamReplayer` or a live crawler
adapter), ticks the truth engine once per batch, tracks per-batch
processing time against a soft deadline, and exposes the current state
— per-claim verdicts, flip history, source reliability, misinformation
suspects — the way a deployed dashboard would query it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.core.acs import ACSConfig
from repro.obs import Clock, WallClock
from repro.core.reliability import (
    ReliabilityEstimator,
    SourceReliability,
    rank_spreaders,
)
from repro.core.sstd import SSTDConfig, StreamingSSTD
from repro.core.types import Report, TruthEstimate, TruthValue
from repro.system.deadline import DeadlineTracker
from repro.text.pipeline import RawTweet, TweetPipeline

__all__ = [
    "ApplicationConfig",
    "FlipEvent",
    "SocialSensingApplication",
]


@dataclass(frozen=True, slots=True)
class ApplicationConfig:
    """Deployment knobs of the end-to-end application.

    Attributes:
        sstd: Truth-engine configuration (window sized to the event's
            expected truth-change frequency, §III-B).
        deadline: Soft per-batch processing deadline in seconds
            (wall-clock; the QoS target of §IV-C1).
        retrain_every: Streaming engine retrain cadence (ticks).
        keep_flip_history: Record every verdict change with its time.
    """

    sstd: SSTDConfig = field(
        default_factory=lambda: SSTDConfig(
            acs=ACSConfig(window=600.0, step=60.0), min_observations=4
        )
    )
    deadline: float = 1.0
    retrain_every: int = 10
    keep_flip_history: bool = True

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError("deadline must be > 0")


@dataclass(frozen=True, slots=True)
class FlipEvent:
    """A live verdict change on one claim."""

    claim_id: str
    at: float
    new_value: TruthValue


class SocialSensingApplication:
    """The full SSTD application loop over a tweet stream."""

    def __init__(
        self,
        config: ApplicationConfig | None = None,
        pipeline: Optional[TweetPipeline] = None,
        clock: Clock | None = None,
    ) -> None:
        self.config = config or ApplicationConfig()
        self.pipeline = pipeline or TweetPipeline()
        self.clock: Clock = clock if clock is not None else WallClock()
        self.engine = StreamingSSTD(
            self.config.sstd, retrain_every=self.config.retrain_every
        )
        self.tracker = DeadlineTracker(deadline=self.config.deadline)
        self.flips: list[FlipEvent] = []
        self._verdicts: dict[str, TruthValue] = {}
        self._reports: list[Report] = []
        self._estimates: list[TruthEstimate] = []
        self._batch_index = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_tweets(self, tweets: Iterable[RawTweet], now: float) -> int:
        """Score and ingest raw tweets; returns how many survived the
        keyword filter.  ``now`` is the stream time of the batch end."""
        reports = self.pipeline.process_stream(tweets)
        return self.ingest_reports(reports, now)

    def ingest_reports(self, reports: Sequence[Report], now: float) -> int:
        """Ingest pre-scored reports and tick the truth engine.

        Wall-clock processing time is recorded against the deadline.
        """
        started = self.clock.now()
        for report in reports:
            self.engine.push(report)
            self._reports.append(report)
        estimates = self.engine.tick(now)
        self._estimates.extend(estimates)
        for estimate in estimates:
            previous = self._verdicts.get(estimate.claim_id)
            if previous is not None and previous != estimate.value:
                if self.config.keep_flip_history:
                    self.flips.append(
                        FlipEvent(
                            claim_id=estimate.claim_id,
                            at=now,
                            new_value=estimate.value,
                        )
                    )
            self._verdicts[estimate.claim_id] = estimate.value
        elapsed = self.clock.now() - started
        self.tracker.record(self._batch_index, len(reports), elapsed)
        self._batch_index += 1
        return len(reports)

    # ------------------------------------------------------------------
    # Queries (the dashboard surface)
    # ------------------------------------------------------------------
    def verdicts(self) -> Mapping[str, TruthValue]:
        """Current truth verdict per claim."""
        return dict(self._verdicts)

    def estimates_for(self, claim_id: str) -> list[TruthEstimate]:
        """Full estimate history of one claim, time-ordered."""
        return sorted(
            (e for e in self._estimates if e.claim_id == claim_id),
            key=lambda e: e.timestamp,
        )

    def true_claims(self) -> list[str]:
        return sorted(
            claim_id
            for claim_id, value in self._verdicts.items()
            if value is TruthValue.TRUE
        )

    def source_reliabilities(self) -> dict[str, SourceReliability]:
        """Posterior reliability of every scored source."""
        return ReliabilityEstimator().estimate(self._reports, self._estimates)

    def suspected_spreaders(self, top_k: int = 10) -> list[SourceReliability]:
        """Most likely misinformation spreaders so far."""
        return rank_spreaders(self.source_reliabilities(), top_k=top_k)

    @property
    def qos_hit_rate(self) -> float:
        """Fraction of batches processed within the deadline."""
        return self.tracker.hit_rate

    @property
    def n_claims(self) -> int:
        return len(self._verdicts)

    @property
    def n_reports(self) -> int:
        return len(self._reports)

    def status_line(self) -> str:
        """One-line operational summary."""
        return (
            f"claims={self.n_claims} reports={self.n_reports} "
            f"true={len(self.true_claims())} flips={len(self.flips)} "
            f"qos={self.qos_hit_rate:.0%}"
        )
