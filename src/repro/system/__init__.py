"""The integrated SSTD system: DTM, TD jobs, deadlines, deployment."""

from repro.system.application import (
    ApplicationConfig,
    FlipEvent,
    SocialSensingApplication,
)
from repro.system.deadline import DeadlineTracker, IntervalRecord, hit_rate_curve
from repro.system.dtm import DTMConfig, DynamicTaskManager
from repro.system.jobs import TDJob
from repro.system.monitor import MonitorSample, MonitorSummary, SystemMonitor
from repro.system.sstd_system import (
    BatchRunResult,
    DistributedSSTD,
    IntervalRunResult,
    SSTDSystemConfig,
)

__all__ = [
    "ApplicationConfig",
    "BatchRunResult",
    "DTMConfig",
    "DeadlineTracker",
    "DistributedSSTD",
    "DynamicTaskManager",
    "FlipEvent",
    "IntervalRecord",
    "IntervalRunResult",
    "MonitorSample",
    "MonitorSummary",
    "SystemMonitor",
    "SSTDSystemConfig",
    "SocialSensingApplication",
    "TDJob",
    "hit_rate_curve",
]
