"""Command-line entry point of the SSTD lint engine.

Usage::

    python -m repro.devtools.lint src/repro            # lint the package
    python -m repro.devtools.lint --format json src    # machine-readable
    python -m repro.devtools.lint --format github src  # CI annotations
    python -m repro.devtools.lint --format sarif src   # code scanning
    python -m repro.devtools.lint --select SSTD003 src/repro/workqueue
    python -m repro.devtools.lint --changed-only origin/main src/repro
    python -m repro.devtools.lint --no-cache --json-report lint.json src
    python -m repro.devtools.lint --noqa-budget 53 src/repro
    python -m repro.devtools.lint --disable SSTD006,SSTD011 benchmarks
    python -m repro.devtools.lint --explain SSTD014
    python -m repro.devtools.lint --list-rules

Exits non-zero when any finding survives suppression, so the command
doubles as a CI gate.  Suppress an individual finding with a trailing
``# noqa: SSTD###`` comment on the flagged line (justify it nearby);
suppressions that no longer silence anything are themselves flagged as
``SSTD000`` unless ``--no-stale-noqa`` is given.  ``--noqa-budget N``
additionally fails the run when the *total* number of ``noqa``
comments in the linted files exceeds ``N`` — CI pins the current
count, so new suppressions must retire an old one or raise the budget
in review.

``--changed-only REF`` lints only the files that differ from the git
ref **plus their call-graph dependents** — the whole-program summary
layer is still built over everything, so cross-module findings
(SSTD007/008/012) in files whose *callees* changed are not missed.

Results are cached under ``.lint_cache/`` keyed by file content, the
lint package's own sources, and the file's dependency closure;
``--no-cache`` forces a full re-run and ``--stats`` prints cache hit
rates to stderr.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.lint.cache import DEFAULT_CACHE_DIR, LintCache
from repro.devtools.lint.engine import (
    all_rules,
    count_noqa_comments,
    iter_python_files,
    lint_paths,
)
from repro.devtools.lint.reporters import (
    render_github,
    render_json,
    render_sarif,
    render_text,
)

__all__ = [
    "build_parser",
    "changed_paths_from_git",
    "explain_rule",
    "main",
    "run_lint",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "SSTD-specific static analysis: lock discipline, blocking-"
            "under-lock, lock-order deadlock cycles, payload "
            "picklability, kernel determinism, thread lifecycle, seeded "
            "randomness, probability-safe numerics, exception and export "
            "hygiene, resource lifecycle (leak / use-after-release), and "
            "exception contracts. Exits 1 when findings remain, 2 on "
            "usage errors."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files or directories to lint (default: src/repro, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github", "sarif"),
        default="text",
        help="report format (default: text); 'github' emits workflow-"
        "command annotations, 'sarif' a SARIF 2.1.0 log for code "
        "scanning",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all), e.g. "
        "SSTD003,SSTD004",
    )
    parser.add_argument(
        "--disable",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip (applied after "
        "--select); e.g. --disable SSTD006,SSTD011 for the relaxed "
        "benchmarks/examples profile",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print what a rule checks, its sanction syntax, and a "
        "minimal example, then exit (e.g. --explain SSTD014)",
    )
    parser.add_argument(
        "--changed-only",
        default=None,
        metavar="REF",
        help="lint only files changed vs the git REF plus their "
        "call-graph dependents (the project summary layer still covers "
        "every file)",
    )
    parser.add_argument(
        "--noqa-budget",
        type=int,
        default=None,
        metavar="N",
        help="fail when the linted files contain more than N noqa "
        "comments in total (CI pins the current count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the .lint_cache/ result cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="result cache directory (default: .lint_cache)",
    )
    parser.add_argument(
        "--no-stale-noqa",
        action="store_true",
        help="skip the SSTD000 stale-suppression audit",
    )
    parser.add_argument(
        "--json-report",
        type=Path,
        default=None,
        metavar="FILE",
        help="additionally write the JSON report to FILE (any --format)",
    )
    parser.add_argument(
        "--sarif-report",
        type=Path,
        default=None,
        metavar="FILE",
        help="additionally write the SARIF 2.1.0 log to FILE (any "
        "--format)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache hit rates and file counts to stderr",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _default_paths() -> list[Path]:
    preferred = Path("src/repro")
    return [preferred if preferred.is_dir() else Path(".")]


def changed_paths_from_git(ref: str) -> list[Path]:
    """Python files changed vs ``ref`` (committed, staged, or unstaged).

    Raises :class:`RuntimeError` with git's stderr when the ref (or the
    repository) is unusable, so the CLI can exit 2 with a real message.
    """
    proc = subprocess.run(
        ["git", "diff", "--name-only", ref, "--"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        detail = proc.stderr.strip() or f"git diff {ref} failed"
        raise RuntimeError(detail)
    return [
        Path(line)
        for line in proc.stdout.splitlines()
        if line.endswith(".py")
    ]


_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
    "sarif": render_sarif,
}

_SSTD000_EXPLAIN = """\
SSTD000 — engine-level diagnostics

Reserved for the engine itself, not a registered rule: syntax errors
in linted files and stale suppressions (a '# noqa' that no longer
silences any finding).  There is no sanction — fix the syntax error,
or delete the stale suppression.
"""


def explain_rule(rule_id: str) -> tuple[str, int]:
    """Human documentation for one rule: ``(text, exit code)``.

    Pulls the summary from the rule object, the long-form rationale
    from the rule module's docstring, and the sanction/example the rule
    class declares.  SSTD000 (engine diagnostics) is special-cased.
    """
    rule_id = rule_id.strip().upper()
    if rule_id == "SSTD000":
        return _SSTD000_EXPLAIN, 0
    for rule in all_rules():
        if rule.rule_id != rule_id:
            continue
        sections = [f"{rule.rule_id} — {rule.summary}"]
        doc = sys.modules[type(rule).__module__].__doc__
        if doc:
            sections.append(doc.strip())
        if rule.sanction:
            sections.append(f"Sanction:\n  {rule.sanction}")
        if rule.example:
            example = "\n".join(
                f"  {line}" for line in rule.example.rstrip().splitlines()
            )
            sections.append(f"Example:\n{example}")
        return "\n\n".join(sections) + "\n", 0
    known = ", ".join(r.rule_id for r in all_rules())
    return (
        f"unknown rule id: {rule_id} (known: SSTD000, {known})\n",
        2,
    )


def _drop_disabled(rules: list, disable: str | None) -> list:
    if not disable:
        return rules
    disabled = {d.strip().upper() for d in disable.split(",") if d.strip()}
    known = {rule.rule_id for rule in all_rules()}
    unknown = sorted(disabled - known)
    if unknown:
        raise KeyError(
            f"--disable: unknown rule id(s): {', '.join(unknown)}"
        )
    return [rule for rule in rules if rule.rule_id not in disabled]


def run_lint(
    paths: Sequence[Path],
    output_format: str = "text",
    select: str | None = None,
    disable: str | None = None,
    use_cache: bool = False,
    cache_dir: Path = DEFAULT_CACHE_DIR,
    audit_noqa: bool | None = None,
    json_report: Path | None = None,
    sarif_report: Path | None = None,
    changed_only: Sequence[Path] | None = None,
    noqa_budget: int | None = None,
    stats: dict | None = None,
) -> tuple[str, int]:
    """Lint ``paths``; returns ``(report, exit_code)``.

    ``audit_noqa=None`` lets the engine decide (stale-``noqa`` audit on
    exactly when the full rule set runs).  A partial ``--select`` run
    therefore never reports SSTD000 stale suppressions.
    """
    selected = select.split(",") if select else None
    rules = _drop_disabled(all_rules(selected), disable)
    cache = LintCache(cache_dir) if use_cache else None
    if stats is None:
        stats = {}
    findings = lint_paths(
        paths,
        rules=rules,
        audit_noqa=audit_noqa,
        cache=cache,
        changed_only=changed_only,
        stats=stats,
    )
    n_files = stats.get("files_seen", 0)
    renderer = _RENDERERS[output_format]
    if output_format == "sarif":
        report = render_sarif(findings, n_files=n_files, rules=rules)
    else:
        report = renderer(findings, n_files=n_files)
    code = 1 if findings else 0
    if noqa_budget is not None:
        total = sum(
            count_noqa_comments(file_path)
            for file_path in iter_python_files(paths)
        )
        stats["noqa_count"] = total
        if total > noqa_budget:
            report += (
                f"\nnoqa budget exceeded: {total} suppression comment(s) "
                f"in the linted files, budget is {noqa_budget}; remove "
                "one (fix the finding) or raise the budget in review"
            )
            code = max(code, 1)
    if json_report is not None:
        json_report.write_text(
            render_json(findings, n_files=n_files) + "\n", encoding="utf-8"
        )
    if sarif_report is not None:
        sarif_report.write_text(
            render_sarif(findings, n_files=n_files, rules=rules) + "\n",
            encoding="utf-8",
        )
    return report, code


def _format_stats(stats: dict) -> str:
    parts = [
        f"files={stats.get('files_seen', 0)}",
        f"checked={stats.get('files_checked', 0)}",
    ]
    for kind in ("findings", "summary"):
        hits = stats.get(f"{kind}_hits")
        misses = stats.get(f"{kind}_misses")
        if hits is None or misses is None:
            continue
        total = hits + misses
        rate = f"{hits / total:.0%}" if total else "n/a"
        parts.append(f"{kind}-cache {hits}/{total} hits ({rate})")
    if "noqa_count" in stats:
        parts.append(f"noqa={stats['noqa_count']}")
    return "lint stats: " + ", ".join(parts)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    if args.explain is not None:
        text, code = explain_rule(args.explain)
        print(text, end="", file=sys.stderr if code else sys.stdout)
        return code
    paths = args.paths or _default_paths()
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    changed: list[Path] | None = None
    if args.changed_only is not None:
        try:
            changed = changed_paths_from_git(args.changed_only)
        except RuntimeError as exc:
            print(f"--changed-only: {exc}", file=sys.stderr)
            return 2
    stats: dict = {}
    try:
        report, code = run_lint(
            paths,
            output_format=args.format,
            select=args.select,
            disable=args.disable,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            audit_noqa=False if args.no_stale_noqa else None,
            json_report=args.json_report,
            sarif_report=args.sarif_report,
            changed_only=changed,
            noqa_budget=args.noqa_budget,
            stats=stats,
        )
    except KeyError as exc:
        print(str(exc.args[0]) if exc.args else str(exc), file=sys.stderr)
        return 2
    print(report)
    if args.stats:
        print(_format_stats(stats), file=sys.stderr)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
