"""Command-line entry point of the SSTD lint engine.

Usage::

    python -m repro.devtools.lint src/repro            # lint the package
    python -m repro.devtools.lint --format json src    # machine-readable
    python -m repro.devtools.lint --select SSTD003 src/repro/workqueue
    python -m repro.devtools.lint --list-rules

Exits non-zero when any finding survives suppression, so the command
doubles as a CI gate.  Suppress an individual finding with a trailing
``# noqa: SSTD###`` comment on the flagged line (justify it nearby).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.lint.engine import (
    all_rules,
    iter_python_files,
    lint_file,
)
from repro.devtools.lint.reporters import render_json, render_text

__all__ = ["build_parser", "main", "run_lint"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "SSTD-specific static analysis: lock discipline, seeded "
            "randomness, probability-safe numerics, exception and export "
            "hygiene. Exits 1 when findings remain, 2 on usage errors."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files or directories to lint (default: src/repro, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all), e.g. "
        "SSTD003,SSTD004",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _default_paths() -> list[Path]:
    preferred = Path("src/repro")
    return [preferred if preferred.is_dir() else Path(".")]


def run_lint(
    paths: Sequence[Path],
    output_format: str = "text",
    select: str | None = None,
) -> tuple[str, int]:
    """Lint ``paths``; returns ``(report, exit_code)``."""
    selected = select.split(",") if select else None
    rules = all_rules(selected)
    files = list(iter_python_files(paths))
    findings = []
    for file_path in files:
        findings.extend(lint_file(file_path, rules=rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    if output_format == "json":
        report = render_json(findings, n_files=len(files))
    else:
        report = render_text(findings, n_files=len(files))
    return report, 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    paths = args.paths or _default_paths()
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        report, code = run_lint(paths, output_format=args.format, select=args.select)
    except KeyError as exc:
        print(str(exc.args[0]) if exc.args else str(exc), file=sys.stderr)
        return 2
    print(report)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
