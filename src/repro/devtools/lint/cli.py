"""Command-line entry point of the SSTD lint engine.

Usage::

    python -m repro.devtools.lint src/repro            # lint the package
    python -m repro.devtools.lint --format json src    # machine-readable
    python -m repro.devtools.lint --format github src  # CI annotations
    python -m repro.devtools.lint --select SSTD003 src/repro/workqueue
    python -m repro.devtools.lint --no-cache --json-report lint.json src
    python -m repro.devtools.lint --list-rules

Exits non-zero when any finding survives suppression, so the command
doubles as a CI gate.  Suppress an individual finding with a trailing
``# noqa: SSTD###`` comment on the flagged line (justify it nearby);
suppressions that no longer silence anything are themselves flagged as
``SSTD000`` unless ``--no-stale-noqa`` is given.

Results are cached under ``.lint_cache/`` keyed by file content and the
lint package's own sources; ``--no-cache`` forces a full re-run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.lint.cache import DEFAULT_CACHE_DIR, LintCache
from repro.devtools.lint.engine import (
    all_rules,
    iter_python_files,
    lint_file,
)
from repro.devtools.lint.reporters import (
    render_github,
    render_json,
    render_text,
)

__all__ = ["build_parser", "main", "run_lint"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "SSTD-specific static analysis: lock discipline, blocking-"
            "under-lock, payload picklability, thread lifecycle, seeded "
            "randomness, probability-safe numerics, exception and export "
            "hygiene. Exits 1 when findings remain, 2 on usage errors."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files or directories to lint (default: src/repro, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (default: text); 'github' emits workflow-"
        "command annotations for Actions runs",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all), e.g. "
        "SSTD003,SSTD004",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the .lint_cache/ result cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="result cache directory (default: .lint_cache)",
    )
    parser.add_argument(
        "--no-stale-noqa",
        action="store_true",
        help="skip the SSTD000 stale-suppression audit",
    )
    parser.add_argument(
        "--json-report",
        type=Path,
        default=None,
        metavar="FILE",
        help="additionally write the JSON report to FILE (any --format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _default_paths() -> list[Path]:
    preferred = Path("src/repro")
    return [preferred if preferred.is_dir() else Path(".")]


_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}


def run_lint(
    paths: Sequence[Path],
    output_format: str = "text",
    select: str | None = None,
    use_cache: bool = False,
    cache_dir: Path = DEFAULT_CACHE_DIR,
    audit_noqa: bool | None = None,
    json_report: Path | None = None,
) -> tuple[str, int]:
    """Lint ``paths``; returns ``(report, exit_code)``.

    ``audit_noqa=None`` lets the engine decide (stale-``noqa`` audit on
    exactly when the full rule set runs).  A partial ``--select`` run
    therefore never reports SSTD000 stale suppressions.
    """
    selected = select.split(",") if select else None
    rules = all_rules(selected)
    rule_ids = tuple(sorted(rule.rule_id for rule in rules))
    cache = LintCache(cache_dir) if use_cache else None
    files = list(iter_python_files(paths))
    findings = []
    for file_path in files:
        if cache is not None:
            cached = cache.get(file_path, rule_ids, audit_noqa)
            if cached is not None:
                findings.extend(cached)
                continue
        file_findings = lint_file(file_path, rules=rules, audit_noqa=audit_noqa)
        if cache is not None:
            cache.put(file_path, rule_ids, audit_noqa, file_findings)
        findings.extend(file_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    report = _RENDERERS[output_format](findings, n_files=len(files))
    if json_report is not None:
        json_report.write_text(
            render_json(findings, n_files=len(files)) + "\n", encoding="utf-8"
        )
    return report, 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    paths = args.paths or _default_paths()
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        report, code = run_lint(
            paths,
            output_format=args.format,
            select=args.select,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            audit_noqa=False if args.no_stale_noqa else None,
            json_report=args.json_report,
        )
    except KeyError as exc:
        print(str(exc.args[0]) if exc.args else str(exc), file=sys.stderr)
        return 2
    print(report)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
