"""SSTD003: lock discipline for annotated shared attributes.

The Work Queue layer (:mod:`repro.workqueue`) and cluster substrate
(:mod:`repro.cluster`) touch scheduler state from multiple threads.
Attributes declared lock-guarded may only be read or written while the
guarding lock is held; the declaration is a comment on the assignment
that creates the attribute:

    self._pending: list[Task] = []   # guarded-by: _lock

Three annotations drive the rule:

- ``# guarded-by: <lock>`` — ``self.<attr>`` on this line may only be
  accessed inside ``with self.<lock>:`` (outside ``__init__``, which
  runs before any worker thread exists);
- ``# lock-alias: <lock>`` — entering ``with self.<name>:`` for the
  object assigned on this line counts as holding ``<lock>`` (the
  ``threading.Condition(self._lock)`` pattern);
- ``# holds-lock: <lock>`` on a ``def`` line — the method is documented
  as called with ``<lock>`` already held, so its whole body passes.

Since PR 3 the rule runs on the shared lockset walker
(:mod:`repro.devtools.lint.flow`), so it also understands local lock
aliases (``lock = self._lock`` followed by ``with lock:``) and joins
branches conservatively.  When the whole-program call graph is
attached (linting a file set), the class flows come from its
effects-aware fixpoint: a same-class helper that *net-acquires* or
*net-releases* a lock (``self._enter()`` / ``self._exit()`` pairs)
updates the caller's lockset at the call site, so guarded accesses
after such calls are judged against the real lock state instead of
the lexical one.  The escape analysis built on the same walker lives
in SSTD007 (:mod:`repro.devtools.lint.rules.concurrency`).

The rule is annotation-driven, so it is safe to run repo-wide: files
without annotations produce no findings.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding, Rule, register
from repro.devtools.lint.flow import iter_class_flows

__all__ = ["LockDisciplineRule"]


@register
class LockDisciplineRule(Rule):
    rule_id = "SSTD003"
    summary = "guarded attributes only touched while their lock is held"
    needs_project = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for flow in iter_class_flows(ctx):
            guards = flow.model.guards
            if not guards:
                continue
            for method in flow.methods.values():
                if method.name == "__init__":
                    # Runs before any other thread can see the object.
                    continue
                for access in method.accesses:
                    lock = guards.get(access.attr)
                    if lock is None or lock in access.held:
                        continue
                    yield self.finding(
                        ctx,
                        access.node,
                        f"self.{access.attr} is declared "
                        f"'# guarded-by: {lock}' but "
                        f"{method.name}() accesses it without holding "
                        f"self.{lock}; wrap the access in "
                        f"'with self.{lock}:' "
                        f"or annotate the method '# holds-lock: {lock}'",
                    )
