"""SSTD003: lock discipline for annotated shared attributes.

The Work Queue layer (:mod:`repro.workqueue`) and cluster substrate
(:mod:`repro.cluster`) touch scheduler state from multiple threads.
Attributes declared lock-guarded may only be read or written while the
guarding lock is held; the declaration is a comment on the assignment
that creates the attribute:

    self._pending: list[Task] = []   # guarded-by: _lock

Three annotations drive the rule:

- ``# guarded-by: <lock>`` — ``self.<attr>`` on this line may only be
  accessed inside ``with self.<lock>:`` (outside ``__init__``, which
  runs before any worker thread exists);
- ``# lock-alias: <lock>`` — entering ``with self.<name>:`` for the
  object assigned on this line counts as holding ``<lock>`` (the
  ``threading.Condition(self._lock)`` pattern);
- ``# holds-lock: <lock>`` on a ``def`` line — the method is documented
  as called with ``<lock>`` already held, so its whole body passes.

The rule is annotation-driven, so it is safe to run repo-wide: files
without annotations produce no findings.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding, Rule, register

__all__ = ["LockDisciplineRule"]

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(\w+)")
_ALIAS_RE = re.compile(r"#\s*lock-alias:\s*(\w+)")
_HOLDS_RE = re.compile(r"#\s*holds-lock:\s*(\w+)")


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _assigned_self_attrs(stmt: ast.stmt) -> list[str]:
    """Attributes of ``self`` assigned by an Assign/AnnAssign statement."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets = [stmt.target]
    attrs = []
    for target in targets:
        attr = _self_attr(target)
        if attr is not None:
            attrs.append(attr)
    return attrs


class _BodyChecker(ast.NodeVisitor):
    """Walks a method body tracking which locks are lexically held."""

    def __init__(
        self,
        rule: "LockDisciplineRule",
        ctx: FileContext,
        guards: dict[str, str],
        aliases: dict[str, str],
        held: set[str],
        method: str,
    ) -> None:
        self.rule = rule
        self.ctx = ctx
        self.guards = guards
        self.aliases = aliases
        self.held = held
        self.method = method
        self.findings: list[Finding] = []

    def _acquired(self, node: ast.With) -> set[str]:
        locks: set[str] = set()
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is None:
                continue
            if attr in self.aliases:
                locks.add(self.aliases[attr])
            elif attr in set(self.guards.values()):
                locks.add(attr)
        return locks

    def visit_With(self, node: ast.With) -> None:
        acquired = self._acquired(node) - self.held
        self.held |= acquired
        self.generic_visit(node)
        self.held -= acquired

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None and attr in self.guards:
            lock = self.guards[attr]
            if lock not in self.held:
                self.findings.append(
                    self.rule.finding(
                        self.ctx,
                        node,
                        f"self.{attr} is declared '# guarded-by: {lock}' but "
                        f"{self.method}() accesses it without holding "
                        f"self.{lock}; wrap the access in 'with self.{lock}:' "
                        f"or annotate the method '# holds-lock: {lock}'",
                    )
                )
        self.generic_visit(node)


@register
class LockDisciplineRule(Rule):
    rule_id = "SSTD003"
    summary = "guarded attributes only touched while their lock is held"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _collect_annotations(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> tuple[dict[str, str], dict[str, str]]:
        guards: dict[str, str] = {}
        aliases: dict[str, str] = {}
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            line = ctx.line_text(node.lineno)
            guarded = _GUARDED_RE.search(line)
            alias = _ALIAS_RE.search(line)
            if guarded is None and alias is None:
                continue
            for attr in _assigned_self_attrs(node):
                if guarded is not None:
                    guards[attr] = guarded.group(1)
                if alias is not None:
                    aliases[attr] = alias.group(1)
        return guards, aliases

    def _held_on_entry(self, ctx: FileContext, method: ast.FunctionDef) -> set[str]:
        held: set[str] = set()
        first_body_line = method.body[0].lineno if method.body else method.lineno
        for lineno in range(method.lineno, first_body_line + 1):
            match = _HOLDS_RE.search(ctx.line_text(lineno))
            if match is not None:
                held.add(match.group(1))
        return held

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        guards, aliases = self._collect_annotations(ctx, cls)
        if not guards:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                # Runs before any other thread can see the object.
                continue
            checker = _BodyChecker(
                rule=self,
                ctx=ctx,
                guards=guards,
                aliases=aliases,
                held=self._held_on_entry(ctx, method),
                method=method.name,
            )
            for stmt in method.body:
                checker.visit(stmt)
            yield from checker.findings
