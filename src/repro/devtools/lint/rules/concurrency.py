"""SSTD007/SSTD008: flow-aware race and deadlock checks.

Both rules consume the lockset walker in
:mod:`repro.devtools.lint.flow`; SSTD003 already polices direct
unguarded accesses, so these rules cover what a per-node check cannot
see:

- **SSTD007** — lock-scope *escapes*.  Calling a helper annotated
  ``# holds-lock: <lock>`` without holding the lock (the helper's own
  body passes SSTD003 because of the annotation, so the call site is
  where the race hides), and capturing a ``# guarded-by:`` value into a
  local under the lock and then using it after release.  With the
  project call graph attached the holds-lock check also crosses class
  and module boundaries: calling ``master._pick_task()`` from another
  component without the master lock is flagged even though the
  annotation lives in a different file.

- **SSTD008** — *blocking calls while holding a lock*.  Holding the
  master lock across ``Thread.join``/``Process.join``, a blocking
  ``Queue.get``/``Queue.put`` (bounded puts), ``time.sleep``,
  ``.drain()``, or a ``Thread``/``Process`` ``start()`` stalls every
  thread contending for the lock — the exact hang class the Work Queue
  supervisor is exposed to.  Leaf calls are classified right here from
  the receiver's inferred type; anything reached *through other
  functions* — same-class helpers, module-level functions, methods of
  other classes in other modules, constructors — is caught via the
  transitive may-block summaries of
  :mod:`repro.devtools.lint.callgraph`, and the diagnostic carries the
  call chain down to the blocking leaf.  Without a project (standalone
  ``lint_source`` of a snippet) the pre-PR-6 one-class fixpoint is the
  fallback.  ``Condition.wait``/``notify`` are exempt: ``wait``
  releases the lock it wraps by design.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.devtools.lint.engine import FileContext, Finding, Rule, register
from repro.devtools.lint.flow import (
    CallEvent,
    ClassFlow,
    MethodFlow,
    blocking_reason,
    iter_class_flows,
)
from repro.devtools.lint.names import ImportMap

__all__ = ["BlockingUnderLockRule", "GuardedEscapeRule"]


def _short(qualname: str) -> str:
    """Readable tail of a qualname/lock id (``Class.meth`` or ``mod.fn``)."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def _project_of(ctx: FileContext):
    project = getattr(ctx, "project", None)
    if project is not None and project.has_module(ctx.module):
        return project
    return None


@register
class GuardedEscapeRule(Rule):
    rule_id = "SSTD007"
    summary = "guarded state must not escape its lock scope"
    needs_project = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for flow in iter_class_flows(ctx):
            if not flow.model.guards:
                continue
            for method in flow.methods.values():
                if method.name == "__init__":
                    continue
                yield from self._check_helper_calls(ctx, flow, method)
                for escape in method.escapes:
                    yield self.finding(
                        ctx,
                        escape.node,
                        f"value of self.{escape.attr} "
                        f"('# guarded-by: {escape.lock}') captured into "
                        f"'{escape.via}' under the lock is used after "
                        f"self.{escape.lock} is released in "
                        f"{method.name}(); keep the use inside "
                        f"'with self.{escape.lock}:' or copy the data out",
                    )
        yield from self._check_cross_class_calls(ctx)

    def _check_helper_calls(
        self, ctx: FileContext, flow: ClassFlow, method: MethodFlow
    ) -> Iterator[Finding]:
        for event in method.calls:
            callee = event.callee
            if callee is None or not callee.startswith("self."):
                continue
            helper = callee[len("self."):]
            if "." in helper:
                continue
            required = flow.requires(helper)
            for lock in sorted(required - event.held):
                yield self.finding(
                    ctx,
                    event.node,
                    f"self.{helper}() is annotated "
                    f"'# holds-lock: {lock}' but {method.name}() calls "
                    f"it without holding self.{lock}; wrap the call in "
                    f"'with self.{lock}:'",
                )

    def _check_cross_class_calls(self, ctx: FileContext) -> Iterator[Finding]:
        """Holds-lock contracts enforced across class/module boundaries.

        Same-class calls are handled (with local-alias precision) by
        :meth:`_check_helper_calls`; here only calls whose resolved
        target lives on a *different* class are considered, comparing
        global lock ids.
        """
        project = _project_of(ctx)
        if project is None:
            return
        for site in project.resolved_calls(ctx.module):
            caller_cls = site.caller.rsplit(".", 1)[0]
            held = set(site.held)
            for target in site.targets:
                if target.rsplit(".", 1)[0] == caller_cls:
                    continue
                required = project.entry_locks.get(target, frozenset())
                for lock in sorted(required - held):
                    yield Finding(
                        rule_id=self.rule_id,
                        message=(
                            f"{_short(target)}() is annotated "
                            f"'# holds-lock: {lock.rsplit('.', 1)[-1]}' "
                            f"({lock}) but {_short(site.caller)}() calls "
                            "it without holding that lock; acquire it "
                            "around the call or route through a public "
                            "method that does"
                        ),
                        path=ctx.path,
                        line=site.line,
                        col=site.col,
                    )


@register
class BlockingUnderLockRule(Rule):
    rule_id = "SSTD008"
    summary = "no blocking calls while holding a lock"
    needs_project = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        project = _project_of(ctx)
        reported: set[tuple[int, int]] = set()
        for flow in iter_class_flows(ctx):
            # Without whole-program summaries, fall back to the
            # pre-PR-6 one-class helper fixpoint.
            blocking_methods = (
                {}
                if project is not None
                else self._blocking_summary(flow, imports)
            )
            for method in flow.methods.values():
                for event in method.calls:
                    if not event.held:
                        continue
                    reason = blocking_reason(
                        event, flow.model, method, imports
                    )
                    if reason is None:
                        reason = self._blocking_helper(
                            event, blocking_methods
                        )
                    if reason is None:
                        continue
                    locks = ", ".join(
                        f"self.{lock}" for lock in sorted(event.held)
                    )
                    reported.add((event.node.lineno, event.node.col_offset))
                    yield self.finding(
                        ctx,
                        event.node,
                        f"{method.name}() {reason} while holding {locks}; "
                        "release the lock first (snapshot the state you "
                        "need, then block outside the critical section)",
                    )
        if project is not None:
            yield from self._check_transitive(ctx, project, reported)

    def _check_transitive(
        self, ctx: FileContext, project, reported: set[tuple[int, int]]
    ) -> Iterator[Finding]:
        """Blocking reached through resolved call chains (any depth)."""
        for site in project.resolved_calls(ctx.module):
            if not site.held:
                continue
            pos = (site.line, site.col)
            if pos in reported:
                continue
            summary = next(
                (
                    project.blocking[target]
                    for target in site.targets
                    if target in project.blocking
                ),
                None,
            )
            if summary is None:
                continue
            reported.add(pos)
            chain = " -> ".join(_short(q) for q in summary.chain)
            locks = ", ".join(_short(lock) for lock in sorted(site.held))
            yield Finding(
                rule_id=self.rule_id,
                message=(
                    f"{_short(site.caller)}() calls {_short(summary.chain[0])}(), "
                    f"which may block ({summary.reason}; chain {chain}), "
                    f"while holding {locks}; release the lock before the "
                    "call or make the callee non-blocking"
                ),
                path=ctx.path,
                line=site.line,
                col=site.col,
            )

    # -- intra-class fallback (no project attached) ----------------------
    def _blocking_helper(
        self, event: CallEvent, blocking_methods: dict[str, str]
    ) -> Optional[str]:
        callee = event.callee
        if callee is None or not callee.startswith("self."):
            return None
        helper = callee[len("self."):]
        if "." in helper:
            return None
        inner = blocking_methods.get(helper)
        if inner is None:
            return None
        return f"calls self.{helper}(), which blocks ({inner}),"

    def _blocking_summary(
        self, flow: ClassFlow, imports: ImportMap
    ) -> dict[str, str]:
        """Method name -> why it blocks, propagated one class at a time."""
        summary: dict[str, str] = {}
        for method in flow.methods.values():
            for event in method.calls:
                reason = blocking_reason(event, flow.model, method, imports)
                if reason is not None:
                    summary.setdefault(method.name, reason)
                    break
        # Fixpoint: a method calling a blocking same-class helper blocks.
        changed = True
        while changed:
            changed = False
            for method in flow.methods.values():
                if method.name in summary:
                    continue
                for event in method.calls:
                    callee = event.callee or ""
                    helper = callee[len("self."):] if callee.startswith(
                        "self."
                    ) else ""
                    if helper and "." not in helper and helper in summary:
                        summary[method.name] = f"via self.{helper}()"
                        changed = True
                        break
        return summary
