"""SSTD007/SSTD008: flow-aware race and deadlock checks.

Both rules consume the lockset walker in
:mod:`repro.devtools.lint.flow`; SSTD003 already polices direct
unguarded accesses, so these rules cover what a per-node check cannot
see:

- **SSTD007** — lock-scope *escapes*.  Calling a helper annotated
  ``# holds-lock: <lock>`` without holding the lock (the helper's own
  body passes SSTD003 because of the annotation, so the call site is
  where the race hides), and capturing a ``# guarded-by:`` value into a
  local under the lock and then using it after release.

- **SSTD008** — *blocking calls while holding a lock*.  Holding the
  master lock across ``Thread.join``/``Process.join``, a blocking
  ``Queue.get``/``Queue.put`` (bounded puts), ``time.sleep``,
  ``.drain()``, or a ``Thread``/``Process`` ``start()`` stalls every
  thread contending for the lock — the exact hang class the Work Queue
  supervisor is exposed to.  Calls to same-class helpers that the
  walker found to contain blocking operations are flagged too (one
  intra-class summary fixpoint, no cross-class propagation).
  ``Condition.wait``/``notify`` are exempt: ``wait`` releases the lock
  it wraps by design.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.lint.engine import FileContext, Finding, Rule, register
from repro.devtools.lint.flow import (
    AttrInfo,
    CallEvent,
    ClassFlow,
    MethodFlow,
    iter_class_flows,
)
from repro.devtools.lint.names import ImportMap

__all__ = ["BlockingUnderLockRule", "GuardedEscapeRule"]


@register
class GuardedEscapeRule(Rule):
    rule_id = "SSTD007"
    summary = "guarded state must not escape its lock scope"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for flow in iter_class_flows(ctx):
            if not flow.model.guards:
                continue
            for method in flow.methods.values():
                if method.name == "__init__":
                    continue
                yield from self._check_helper_calls(ctx, flow, method)
                for escape in method.escapes:
                    yield self.finding(
                        ctx,
                        escape.node,
                        f"value of self.{escape.attr} "
                        f"('# guarded-by: {escape.lock}') captured into "
                        f"'{escape.via}' under the lock is used after "
                        f"self.{escape.lock} is released in "
                        f"{method.name}(); keep the use inside "
                        f"'with self.{escape.lock}:' or copy the data out",
                    )

    def _check_helper_calls(
        self, ctx: FileContext, flow: ClassFlow, method: MethodFlow
    ) -> Iterator[Finding]:
        for event in method.calls:
            callee = event.callee
            if callee is None or not callee.startswith("self."):
                continue
            helper = callee[len("self."):]
            if "." in helper:
                continue
            required = flow.requires(helper)
            for lock in sorted(required - event.held):
                yield self.finding(
                    ctx,
                    event.node,
                    f"self.{helper}() is annotated "
                    f"'# holds-lock: {lock}' but {method.name}() calls "
                    f"it without holding self.{lock}; wrap the call in "
                    f"'with self.{lock}:'",
                )


def _resolve(imports: ImportMap, callee: str) -> str:
    root, _, rest = callee.partition(".")
    canonical = imports.aliases.get(root, root)
    return f"{canonical}.{rest}" if rest else canonical


def _nonblocking_call(call: ast.Call, meth: str) -> bool:
    """True for ``get(False)`` / ``put(x, False)`` / ``block=False``."""
    index = 0 if meth == "get" else 1
    if len(call.args) > index:
        arg = call.args[index]
        return isinstance(arg, ast.Constant) and arg.value is False
    for kw in call.keywords:
        if kw.arg == "block":
            return isinstance(kw.value, ast.Constant) and kw.value.value is False
    return False


@register
class BlockingUnderLockRule(Rule):
    rule_id = "SSTD008"
    summary = "no blocking calls while holding a lock"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for flow in iter_class_flows(ctx):
            blocking_methods = self._blocking_summary(flow, imports)
            for method in flow.methods.values():
                for event in method.calls:
                    if not event.held:
                        continue
                    reason = self._blocking_reason(
                        event, flow, method, imports
                    )
                    if reason is None:
                        reason = self._blocking_helper(
                            event, blocking_methods
                        )
                    if reason is None:
                        continue
                    locks = ", ".join(
                        f"self.{lock}" for lock in sorted(event.held)
                    )
                    yield self.finding(
                        ctx,
                        event.node,
                        f"{method.name}() {reason} while holding {locks}; "
                        "release the lock first (snapshot the state you "
                        "need, then block outside the critical section)",
                    )

    # -- classification -------------------------------------------------
    def _receiver_info(
        self, receiver: str, flow: ClassFlow, method: MethodFlow
    ) -> Optional[AttrInfo]:
        if receiver.startswith("self."):
            attr = receiver[len("self."):]
            if "." in attr:
                return None
            return flow.model.attrs.get(attr)
        if "." in receiver:
            return None
        return method.local_types.get(receiver)

    def _blocking_reason(
        self,
        event: CallEvent,
        flow: ClassFlow,
        method: MethodFlow,
        imports: ImportMap,
    ) -> Optional[str]:
        callee = event.callee
        if callee is None:
            return None
        if _resolve(imports, callee) == "time.sleep":
            return "calls time.sleep()"
        receiver, _, meth = callee.rpartition(".")
        if not receiver:
            return None
        info = self._receiver_info(receiver, flow, method)
        if meth == "join":
            root = receiver.split(".", 1)[0]
            if root != "self" and root in imports.aliases:
                return None  # module-level join (os.path.join)
            if info is not None and info.kind not in (
                "thread",
                "process",
                "queue",
            ):
                return None  # a str/list/lock receiver; join is not blocking
            return f"calls {receiver}.join(), which blocks until exit,"
        if meth == "drain":
            return (
                f"calls {receiver}.drain(), which blocks until every "
                "outstanding task finishes,"
            )
        if meth in ("get", "put"):
            if info is None or info.kind != "queue":
                return None
            if _nonblocking_call(event.node, meth):
                return None
            if meth == "put" and not info.bounded:
                return None  # unbounded put never blocks
            return f"calls blocking {receiver}.{meth}()"
        if meth == "start":
            if info is not None and info.kind in ("thread", "process"):
                return (
                    f"spawns a {info.kind} via {receiver}.start()"
                )
            return None
        return None

    def _blocking_helper(
        self, event: CallEvent, blocking_methods: dict[str, str]
    ) -> Optional[str]:
        callee = event.callee
        if callee is None or not callee.startswith("self."):
            return None
        helper = callee[len("self."):]
        if "." in helper:
            return None
        inner = blocking_methods.get(helper)
        if inner is None:
            return None
        return f"calls self.{helper}(), which blocks ({inner}),"

    def _blocking_summary(
        self, flow: ClassFlow, imports: ImportMap
    ) -> dict[str, str]:
        """Method name -> why it blocks, propagated one class at a time."""
        summary: dict[str, str] = {}
        for method in flow.methods.values():
            for event in method.calls:
                reason = self._blocking_reason(event, flow, method, imports)
                if reason is not None:
                    summary.setdefault(method.name, reason)
                    break
        # Fixpoint: a method calling a blocking same-class helper blocks.
        changed = True
        while changed:
            changed = False
            for method in flow.methods.values():
                if method.name in summary:
                    continue
                for event in method.calls:
                    callee = event.callee or ""
                    helper = callee[len("self."):] if callee.startswith(
                        "self."
                    ) else ""
                    if helper and "." not in helper and helper in summary:
                        summary[method.name] = f"via self.{helper}()"
                        changed = True
                        break
        return summary
