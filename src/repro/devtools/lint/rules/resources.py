"""SSTD014/SSTD016: resource lifecycle — leaks, use-after-release.

PR 7 made leaks expensive: a ``multiprocessing.shared_memory`` segment
that misses its ``close_and_unlink`` pins ``/dev/shm`` until reboot,
and the retry-heavy Work Queue runtime (paper §IV-A) creates and
destroys executors, queues, and segments constantly.  These rules make
release-on-every-path a *checked* property:

- **SSTD014** — a tracked resource is leaked on a normal or an
  exceptional path.  A declarative registry (:data:`RESOURCE_SPECS`)
  maps acquire calls to their release methods; the walker tracks each
  binding through the function's statements with the exception edges
  from :func:`repro.devtools.lint.flow.analyze_exceptions` semantics:
  a statement that may raise, reached while a resource is held with no
  enclosing ``finally`` releasing it (and no enclosing handler
  absorbing the exception), leaks it.  ``with``-managed acquires and
  ``finally``-covered releases are clean.  Ownership can be handed
  off: returning the resource, passing it to a call, storing it in a
  container, or assigning it to an attribute annotated
  ``# owns-resource:`` all transfer the release obligation.  Findings
  carry the acquire→leak path in :attr:`Finding.steps` (rendered as
  SARIF codeFlows).

- **SSTD016** — use-after-release and double-release: ``submit`` after
  ``shutdown``, ``attach(owner.handle)`` after ``close_and_unlink``,
  reading ``array`` after the attachment closed.  A second release is
  flagged only when the callee is not documented idempotent in the
  registry (``SegmentOwner.close_and_unlink`` and the queues'
  ``shutdown`` are).

Known false negatives (DESIGN.md §10): resources reaching a binding
through an *unresolved* call (``stack.publish()`` where ``stack``'s
class came from an untyped factory), acquires nested inside larger
expressions, aliases (``b = a`` moves tracking, it does not fork it),
releases hidden behind helper calls in ``finally`` bodies, and
bindings whose state differs across branches (joined to *maybe*, never
flagged).  The analysis prefers silence to false alarms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.devtools.lint.engine import FileContext, Finding, Rule, register
from repro.devtools.lint.flow import OWNS_RESOURCE_RE, exception_caught
from repro.devtools.lint.names import ImportMap, dotted_name

__all__ = [
    "RESOURCE_SPECS",
    "ResourceLeakRule",
    "ResourceSpec",
    "UseAfterReleaseRule",
    "resource_returners",
]


@dataclass(frozen=True, slots=True)
class ResourceSpec:
    """Acquire→release contract for one resource family.

    Attributes:
        kind: Stable registry key (also used in messages).
        what: Human phrase for diagnostics.
        acquire: Canonical dotted names whose call acquires the
            resource (module functions, constructors, factory
            methods); matched against import-canonicalized call text
            and against resolved call-graph targets.
        release: Method names on the binding that release it.
        uses: Method/attribute names that are invalid after release.
        context_manager: The acquired object is a context manager
            whose ``__exit__`` releases it (``with`` = guaranteed
            release).
        idempotent_release: A second release call is documented safe.
    """

    kind: str
    what: str
    acquire: tuple[str, ...]
    release: tuple[str, ...]
    uses: tuple[str, ...] = ()
    context_manager: bool = False
    idempotent_release: bool = True


#: The declarative acquire→release registry.  Adding a resource family
#: is one entry here; the walker and both rules are generic over it.
RESOURCE_SPECS: tuple[ResourceSpec, ...] = (
    ResourceSpec(
        kind="shm-segment",
        what="published shared-memory segment",
        acquire=("repro.system.shm.publish_arrays",),
        release=("close_and_unlink",),
        uses=("handle", "nbytes"),
        context_manager=False,
        idempotent_release=True,
    ),
    ResourceSpec(
        kind="shm-attachment",
        what="attached shared-memory segment",
        acquire=("repro.system.shm.attach",),
        release=("close",),
        uses=("array",),
        context_manager=True,
        idempotent_release=True,
    ),
    ResourceSpec(
        kind="work-queue",
        what="work-queue executor",
        acquire=(
            "repro.workqueue.process.ProcessWorkQueue",
            "repro.workqueue.local.LocalWorkQueue",
        ),
        release=("shutdown",),
        uses=("submit", "drain", "set_priority"),
        context_manager=False,
        idempotent_release=True,
    ),
    ResourceSpec(
        kind="executor",
        what="pool executor",
        acquire=(
            "concurrent.futures.ThreadPoolExecutor",
            "concurrent.futures.ProcessPoolExecutor",
        ),
        release=("shutdown",),
        uses=("submit", "map"),
        context_manager=True,
        idempotent_release=True,
    ),
    ResourceSpec(
        kind="file",
        what="open file",
        acquire=("open", "io.open"),
        release=("close",),
        uses=(
            "read",
            "readline",
            "readlines",
            "write",
            "writelines",
            "seek",
            "flush",
        ),
        context_manager=True,
        idempotent_release=True,
    ),
    ResourceSpec(
        kind="tracer-span",
        what="tracer span",
        acquire=("repro.obs.spans.SpanTracer.span",),
        release=(),
        uses=(),
        context_manager=True,
        idempotent_release=True,
    ),
    ResourceSpec(
        kind="trajectory-recorder",
        what="controller trajectory recorder",
        acquire=("repro.control.feedback.TrajectoryRecorder",),
        release=("close",),
        uses=("record",),
        context_manager=True,
        idempotent_release=True,
    ),
)

_SPEC_BY_KIND = {spec.kind: spec for spec in RESOURCE_SPECS}


def _strip_init(qual: str) -> str:
    return qual[: -len(".__init__")] if qual.endswith(".__init__") else qual


def _spec_for_name(canon: str) -> Optional[ResourceSpec]:
    for spec in RESOURCE_SPECS:
        if canon in spec.acquire:
            return spec
    return None


def resource_returners(project) -> dict[str, str]:
    """qualname -> resource kind for functions returning an acquire.

    Transitive fixpoint over the call graph's returned-call refs:
    ``_make_executor`` returns ``LocalWorkQueue(...)`` directly, and a
    wrapper returning ``_make_executor(...)`` inherits the kind.  The
    result is memoized on the project object — the registry is static
    lint-package code, covered by the cache's package fingerprint, so
    no dependency bookkeeping is needed here.
    """
    cached = getattr(project, "_sstd_resource_returners", None)
    if cached is not None:
        return cached
    out: dict[str, str] = {}
    returned = getattr(project, "returned", {})

    def kind_of(ref: str, targets: tuple[str, ...]) -> Optional[str]:
        for target in targets:
            kind = out.get(target)
            if kind is not None:
                return kind
            spec = _spec_for_name(_strip_init(target))
            if spec is not None:
                return spec.kind
        spec = _spec_for_name(_strip_init(ref.partition(":")[2]))
        return spec.kind if spec is not None else None

    changed = True
    while changed:
        changed = False
        for qual, entries in returned.items():
            if qual in out:
                continue
            for ref, targets in entries:
                kind = kind_of(ref, targets)
                if kind is not None:
                    out[qual] = kind
                    changed = True
                    break
    project._sstd_resource_returners = out
    return out


# ---------------------------------------------------------------------------
# The per-function lifecycle walker
# ---------------------------------------------------------------------------

_HELD = "held"
_RELEASED = "released"
_MAYBE = "maybe"

_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


@dataclass(slots=True)
class _Binding:
    name: str
    spec: ResourceSpec
    node: ast.AST  # acquire site
    reported: bool = False


@dataclass(frozen=True, slots=True)
class _Frame:
    """Protection one enclosing try/with contributes to its body.

    ``released_pairs`` — ``(binding name, method)`` release calls a
    ``finally`` guarantees; ``cm_names`` — bindings a ``with`` exit
    releases; ``absorbs`` — a broad handler stops any exception here;
    ``catches`` — classes the handlers stop (filters explicit raises).
    """

    released_pairs: frozenset[tuple[str, str]] = frozenset()
    cm_names: frozenset[str] = frozenset()
    absorbs: bool = False
    catches: frozenset[str] = frozenset()

    def protects(self, name: str, spec: ResourceSpec) -> bool:
        if name in self.cm_names:
            return True
        return any(
            (name, meth) in self.released_pairs for meth in spec.release
        )


def _handler_catch_names(handler: ast.ExceptHandler) -> tuple[str, ...]:
    if handler.type is None:
        return ("*",)
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return tuple(dotted_name(node) or "*" for node in types)


def _released_in(stmts: list[ast.stmt]) -> frozenset[tuple[str, str]]:
    """``(name, method)`` calls anywhere in a ``finally`` body."""
    pairs: set[tuple[str, str]] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
            ):
                pairs.add((node.func.value.id, node.func.attr))
    return frozenset(pairs)


def _exprs_may_raise(*exprs: Optional[ast.expr]) -> bool:
    """Any call (hence any possible exception) in the given expressions."""
    for expr in exprs:
        if expr is None:
            continue
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, _DEFS):
                continue
            if isinstance(node, ast.Call):
                return True
            stack.extend(ast.iter_child_nodes(node))
    return False


class _LifecycleWalker:
    """Tracks resource bindings through one function body.

    Produces SSTD014 leak findings (with acquire→leak step traces) and
    SSTD016 misuse findings; the two rule classes each keep their half.
    """

    def __init__(
        self,
        ctx: FileContext,
        imports: ImportMap,
        resolved: dict[tuple[int, int], tuple[str, ...]],
        returners: dict[str, str],
    ) -> None:
        self.ctx = ctx
        self.imports = imports
        self.resolved = resolved
        self.returners = returners
        #: (node, message, steps) per SSTD014 finding.
        self.leaks: list[tuple[ast.AST, str, tuple]] = []
        #: (node, message) per SSTD016 finding.
        self.misuses: list[tuple[ast.AST, str]] = []

    # -- registry matching ----------------------------------------------
    def _canon(self, callee: str) -> str:
        root, _, rest = callee.partition(".")
        target = self.imports.aliases.get(root, root)
        return f"{target}.{rest}" if rest else target

    def acquire_spec(self, call: ast.Call) -> Optional[ResourceSpec]:
        targets = self.resolved.get((call.lineno, call.col_offset), ())
        if targets:
            # The call resolved into the project: trust the call graph
            # (a local helper shadowing ``open`` must not match the
            # file spec syntactically).
            for target in targets:
                kind = self.returners.get(target)
                if kind is not None:
                    return _SPEC_BY_KIND[kind]
                spec = _spec_for_name(_strip_init(target))
                if spec is not None:
                    return spec
            return None
        callee = dotted_name(call.func)
        if not callee:
            return None
        return _spec_for_name(self._canon(callee))

    # -- findings --------------------------------------------------------
    def _acquire_step(self, binding: _Binding) -> tuple[str, int, int, str]:
        return (
            self.ctx.path,
            binding.node.lineno,
            binding.node.col_offset,
            f"{binding.spec.what} acquired here",
        )

    def report_leak(
        self, binding: _Binding, site: ast.AST, why: str
    ) -> None:
        if binding.reported:
            return
        binding.reported = True
        release = (
            " or ".join(f"{m}()" for m in binding.spec.release)
            or "its context manager"
        )
        message = (
            f"{binding.spec.what} '{binding.name}' "
            f"(acquired at line {binding.node.lineno}) {why}; release it "
            f"with {release} in a finally block"
            + (
                " or use it as a context manager"
                if binding.spec.context_manager
                else ""
            )
        )
        steps = (
            self._acquire_step(binding),
            (
                self.ctx.path,
                getattr(site, "lineno", binding.node.lineno),
                getattr(site, "col_offset", 0),
                why,
            ),
        )
        self.leaks.append((site, message, steps))

    # -- the walk --------------------------------------------------------
    def run(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        env = self.walk(func.body, {}, ())
        for name, (state, binding) in env.items():
            if state == _HELD and not binding.reported:
                self.report_leak(
                    binding,
                    binding.node,
                    "is still held when the function exits",
                )

    def walk(
        self,
        stmts: list[ast.stmt],
        env: dict[str, tuple[str, _Binding]],
        frames: tuple[_Frame, ...],
    ) -> dict[str, tuple[str, _Binding]]:
        for stmt in stmts:
            env = self.walk_stmt(stmt, env, frames)
        return env

    def _escapes(
        self, frames: tuple[_Frame, ...], exc: Optional[str] = None
    ) -> bool:
        """Would an exception here propagate out of the function?"""
        for frame in frames:
            if frame.absorbs:
                return False
            if exc is not None and exception_caught(exc, frame.catches):
                return False
        return True

    def check_exceptional(
        self,
        site: ast.AST,
        env: dict[str, tuple[str, _Binding]],
        frames: tuple[_Frame, ...],
        exc: Optional[str] = None,
        exempt: frozenset[str] = frozenset(),
    ) -> None:
        """Flag held, unprotected bindings at a may-raise statement."""
        if not self._escapes(frames, exc):
            return
        for name, (state, binding) in env.items():
            if state != _HELD or name in exempt:
                continue
            if any(frame.protects(name, binding.spec) for frame in frames):
                continue
            self.report_leak(
                binding,
                site,
                "leaks if this statement raises (no enclosing finally or "
                "with releases it)",
            )

    # -- expression effects ---------------------------------------------
    def _release_targets(self, stmt: ast.stmt) -> frozenset[str]:
        """Binding names whose release method this statement calls."""
        names: set[str] = set()
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
            ):
                names.add(node.func.value.id)
        return frozenset(names)

    def transfer(self, env: dict, name: str) -> None:
        env.pop(name, None)

    def scan_expr(
        self,
        expr: Optional[ast.expr],
        env: dict[str, tuple[str, _Binding]],
        top_discard: bool = False,
    ) -> None:
        """Apply release / use / transfer effects within an expression.

        ``top_discard``: the expression is a bare ``Expr`` statement,
        so a top-level acquire call's result is dropped on the floor —
        an immediate leak (unless it is itself a release/use call).
        """
        if expr is None:
            return
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, _DEFS):
                # Closure capture of a held binding = hand-off.
                for inner in ast.walk(node):
                    if (
                        isinstance(inner, ast.Name)
                        and isinstance(inner.ctx, ast.Load)
                        and inner.id in env
                    ):
                        self.transfer(env, inner.id)
                continue
            if isinstance(node, ast.Call):
                self._scan_call(node, env, discard=(node is expr and top_discard))
            stack.extend(ast.iter_child_nodes(node))

    def _scan_call(
        self,
        call: ast.Call,
        env: dict[str, tuple[str, _Binding]],
        discard: bool = False,
    ) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            bound = env.get(func.value.id)
            if bound is not None:
                state, binding = bound
                meth = func.attr
                if meth in binding.spec.release:
                    if state == _RELEASED and not binding.spec.idempotent_release:
                        self.misuses.append(
                            (
                                call,
                                f"{binding.spec.what} '{binding.name}' "
                                f"released twice ({meth}() is not "
                                "documented idempotent); drop the second "
                                "release",
                            )
                        )
                    env[func.value.id] = (_RELEASED, binding)
                    return
                if meth in binding.spec.uses and state == _RELEASED:
                    self.misuses.append(
                        (
                            call,
                            f"{binding.spec.what} '{binding.name}' used "
                            f"after release: {meth}() called after "
                            f"{' / '.join(binding.spec.release) or 'exit'}"
                            "; move the use before the release or "
                            "re-acquire",
                        )
                    )
        # Ownership transfer + released-attr misuse through arguments.
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Starred):
                arg = arg.value
            if isinstance(arg, ast.Name) and arg.id in env:
                self.transfer(env, arg.id)
            elif (
                isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id in env
            ):
                state, binding = env[arg.value.id]
                if state == _RELEASED and arg.attr in binding.spec.uses:
                    self.misuses.append(
                        (
                            arg,
                            f"{binding.spec.what} '{binding.name}': "
                            f".{arg.attr} read after "
                            f"{' / '.join(binding.spec.release) or 'exit'}"
                            "; the resource is already gone",
                        )
                    )
        if discard:
            spec = self.acquire_spec(call)
            if spec is not None:
                name = dotted_name(call.func) or spec.kind
                message = (
                    f"{spec.what} acquired by {name}(...) is discarded — "
                    "nothing can ever release it; bind it and release in "
                    "a finally block"
                    + (
                        " or use a with statement"
                        if spec.context_manager
                        else ""
                    )
                )
                steps = (
                    (
                        self.ctx.path,
                        call.lineno,
                        call.col_offset,
                        f"{spec.what} acquired and dropped here",
                    ),
                )
                self.leaks.append((call, message, steps))

    # -- statement dispatch ----------------------------------------------
    def walk_stmt(
        self,
        stmt: ast.stmt,
        env: dict[str, tuple[str, _Binding]],
        frames: tuple[_Frame, ...],
    ) -> dict[str, tuple[str, _Binding]]:
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._walk_try(stmt, env, frames)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._walk_with(stmt, env, frames)
        if isinstance(stmt, ast.If):
            if _exprs_may_raise(stmt.test):
                self.check_exceptional(stmt, env, frames)
            self.scan_expr(stmt.test, env)
            env_body = self.walk(stmt.body, dict(env), frames)
            env_else = self.walk(stmt.orelse, dict(env), frames)
            return _join(env_body, env_else)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            if _exprs_may_raise(stmt.iter):
                self.check_exceptional(stmt, env, frames)
            self.scan_expr(stmt.iter, env)
            env_body = self.walk(stmt.body, dict(env), frames)
            env_body = self.walk(stmt.orelse, env_body, frames)
            return _join(env, env_body)
        if isinstance(stmt, ast.While):
            if _exprs_may_raise(stmt.test):
                self.check_exceptional(stmt, env, frames)
            self.scan_expr(stmt.test, env)
            env_body = self.walk(stmt.body, dict(env), frames)
            env_body = self.walk(stmt.orelse, env_body, frames)
            return _join(env, env_body)
        if isinstance(stmt, _DEFS[:3]):
            # Nested def/class: capture of a held binding is a hand-off.
            for inner in ast.walk(stmt):
                if (
                    isinstance(inner, ast.Name)
                    and isinstance(inner.ctx, ast.Load)
                    and inner.id in env
                ):
                    self.transfer(env, inner.id)
            return env
        return self._walk_simple(stmt, env, frames)

    def _walk_simple(
        self,
        stmt: ast.stmt,
        env: dict[str, tuple[str, _Binding]],
        frames: tuple[_Frame, ...],
    ) -> dict[str, tuple[str, _Binding]]:
        if isinstance(stmt, ast.Raise):
            exc_target = (
                stmt.exc.func if isinstance(stmt.exc, ast.Call) else stmt.exc
            )
            exc = dotted_name(exc_target) if exc_target is not None else "*"
            self.check_exceptional(stmt, env, frames, exc=exc or "*")
            self.scan_expr(stmt.exc, env)
            return env
        if isinstance(stmt, ast.Return):
            # ``finally`` frames run on return too; a held binding not
            # protected and not returned leaks on this normal path.
            if isinstance(stmt.value, ast.Name) and stmt.value.id in env:
                self.transfer(env, stmt.value.id)
            elif stmt.value is not None:
                if _exprs_may_raise(stmt.value):
                    self.check_exceptional(stmt, env, frames)
                self.scan_expr(stmt.value, env)
            for name, (state, binding) in list(env.items()):
                if state != _HELD:
                    continue
                if any(f.protects(name, binding.spec) for f in frames):
                    continue
                self.report_leak(
                    binding, stmt, "is still held at this return"
                )
            return env
        # Generic may-raise check first (release calls exempt their own
        # receiver: a failing release is not usefully "a leak of the
        # thing being released").
        if _exprs_may_raise(*_stmt_exprs(stmt)):
            self.check_exceptional(
                stmt, env, frames, exempt=self._release_targets(stmt)
            )
        if isinstance(stmt, ast.Assign):
            self._walk_assign(stmt, env)
            return env
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._walk_assign_value(stmt.target, stmt.value, env, stmt)
            return env
        if isinstance(stmt, ast.Expr):
            self.scan_expr(stmt.value, env, top_discard=True)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.transfer(env, target.id)
            return env
        for expr in _stmt_exprs(stmt):
            self.scan_expr(expr, env)
        return env

    def _walk_assign(self, stmt: ast.Assign, env: dict) -> None:
        for target in stmt.targets:
            self._walk_assign_value(target, stmt.value, env, stmt)

    def _walk_assign_value(
        self,
        target: ast.expr,
        value: ast.expr,
        env: dict[str, tuple[str, _Binding]],
        stmt: ast.stmt,
    ) -> None:
        spec = (
            self.acquire_spec(value) if isinstance(value, ast.Call) else None
        )
        if spec is not None:
            if isinstance(target, ast.Name):
                self.scan_expr(value, env)
                env[target.id] = (
                    _HELD,
                    _Binding(name=target.id, spec=spec, node=value),
                )
                return
            if isinstance(target, ast.Attribute):
                if self._owns_annotated(stmt):
                    self.scan_expr(value, env)
                    return
                message = (
                    f"{spec.what} stored on attribute "
                    f"'{dotted_name(target) or target.attr}' without an "
                    "'# owns-resource:' annotation; the lifecycle is "
                    "untracked from here — annotate the assignment to "
                    "transfer ownership to the object (which must "
                    f"release it) or keep it local"
                )
                steps = (
                    (
                        self.ctx.path,
                        value.lineno,
                        value.col_offset,
                        f"{spec.what} acquired here",
                    ),
                )
                self.leaks.append((stmt, message, steps))
                return
            # Tuple/subscript target: treat as container hand-off.
            self.scan_expr(value, env)
            return
        if isinstance(value, ast.Name) and value.id in env:
            bound = env.pop(value.id)
            if isinstance(target, ast.Name):
                env[target.id] = (bound[0], bound[1])
            # attribute / container store: hand-off (owns-resource is
            # only demanded for *direct* acquire-to-attribute stores;
            # aliased stores are a documented gap).
            return
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            for elt in value.elts:
                if isinstance(elt, ast.Name) and elt.id in env:
                    self.transfer(env, elt.id)
        self.scan_expr(value, env)
        if isinstance(target, ast.Name) and target.id in env:
            # Rebinding a tracked name to something else loses it.
            env.pop(target.id, None)

    def _owns_annotated(self, stmt: ast.stmt) -> bool:
        end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
        for lineno in range(stmt.lineno, min(end, stmt.lineno + 4) + 1):
            if OWNS_RESOURCE_RE.search(self.ctx.line_text(lineno)):
                return True
        return False

    # -- compound statements ---------------------------------------------
    def _walk_try(
        self,
        stmt,
        env: dict[str, tuple[str, _Binding]],
        frames: tuple[_Frame, ...],
    ) -> dict[str, tuple[str, _Binding]]:
        catches: set[str] = set()
        for handler in stmt.handlers:
            catches.update(_handler_catch_names(handler))
        absorbs = bool(catches) and exception_caught("*", frozenset(catches))
        fin_pairs = _released_in(stmt.finalbody)
        body_frame = _Frame(
            released_pairs=fin_pairs,
            absorbs=absorbs,
            catches=frozenset(catches),
        )
        fin_frame = _Frame(released_pairs=fin_pairs)
        entry = dict(env)
        env_body = self.walk(stmt.body, dict(env), frames + (body_frame,))
        env_after = self.walk(
            stmt.orelse, dict(env_body), frames + (fin_frame,)
        )
        # Handlers run from an unknown point in the body: conservative
        # entry state is the join of try-entry and body-exit.
        handler_entry = _join(entry, env_body)
        for handler in stmt.handlers:
            env_handler = self.walk(
                handler.body, dict(handler_entry), frames + (fin_frame,)
            )
            env_after = _join(env_after, env_handler)
        return self.walk(stmt.finalbody, env_after, frames)

    def _walk_with(
        self,
        stmt,
        env: dict[str, tuple[str, _Binding]],
        frames: tuple[_Frame, ...],
    ) -> dict[str, tuple[str, _Binding]]:
        if any(_exprs_may_raise(item.context_expr) for item in stmt.items):
            self.check_exceptional(stmt, env, frames)
        cm_names: set[str] = set()
        exit_released: list[str] = []
        for item in stmt.items:
            ce = item.context_expr
            spec = self.acquire_spec(ce) if isinstance(ce, ast.Call) else None
            if spec is not None and isinstance(item.optional_vars, ast.Name):
                # ``with acquire() as x:`` — guaranteed release at exit.
                name = item.optional_vars.id
                env[name] = (_HELD, _Binding(name=name, spec=spec, node=ce))
                cm_names.add(name)
                exit_released.append(name)
                continue
            if spec is not None:
                # Anonymous ``with acquire():`` — released at exit.
                continue
            if isinstance(ce, ast.Name) and ce.id in env:
                # ``with q:`` over an already-held binding.
                cm_names.add(ce.id)
                exit_released.append(ce.id)
                continue
            self.scan_expr(ce, env)
        frame = _Frame(cm_names=frozenset(cm_names))
        env = self.walk(stmt.body, env, frames + (frame,))
        for name in exit_released:
            bound = env.get(name)
            if bound is not None:
                env[name] = (_RELEASED, bound[1])
        return env


def _join(
    a: dict[str, tuple[str, "_Binding"]],
    b: dict[str, tuple[str, "_Binding"]],
) -> dict[str, tuple[str, "_Binding"]]:
    """Merge branch environments; disagreement demotes to *maybe*."""
    out: dict[str, tuple[str, _Binding]] = {}
    for name in set(a) | set(b):
        ia, ib = a.get(name), b.get(name)
        if ia is None and ib is None:
            continue
        if ia is None or ib is None:
            present = ia or ib
            out[name] = (_MAYBE, present[1])
        elif ia[0] == ib[0] and ia[1] is ib[1]:
            out[name] = ia
        else:
            out[name] = (_MAYBE, ia[1])
    return out


def _stmt_exprs(stmt: ast.stmt) -> list[ast.expr]:
    return [
        child
        for child in ast.iter_child_nodes(stmt)
        if isinstance(child, ast.expr)
    ]


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def _iter_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Top-level functions and class methods (nested defs excluded:
    the walker treats closure capture as a hand-off, and analyzing a
    closure without its capture environment would re-flag transfers)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sub


def _run_walker(ctx: FileContext) -> _LifecycleWalker:
    imports = ImportMap(ctx.tree)
    resolved: dict[tuple[int, int], tuple[str, ...]] = {}
    returners: dict[str, str] = {}
    project = getattr(ctx, "project", None)
    if project is not None and project.has_module(ctx.module):
        for site in project.resolved_calls(ctx.module):
            if site.targets:
                resolved.setdefault((site.line, site.col), site.targets)
        returners = resource_returners(project)
    walker = _LifecycleWalker(ctx, imports, resolved, returners)
    for func in _iter_functions(ctx.tree):
        walker.run(func)
    return walker


@register
class ResourceLeakRule(Rule):
    rule_id = "SSTD014"
    summary = "acquired resources are released on every path"
    needs_project = True
    sanction = (
        "# owns-resource: on an attribute-store line transfers the "
        "release obligation to the object; with/finally-covered "
        "releases, returns, and call-argument hand-offs are clean by "
        "construction"
    )
    example = (
        "def bad():\n"
        "    owner = shm.publish_arrays(arrays)   # SSTD014\n"
        "    risky()        # may raise -> segment leaks\n"
        "    owner.close_and_unlink()\n"
        "\n"
        "def good():\n"
        "    owner = shm.publish_arrays(arrays)\n"
        "    try:\n"
        "        risky()\n"
        "    finally:\n"
        "        owner.close_and_unlink()\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        walker = _run_walker(ctx)
        for node, message, steps in walker.leaks:
            yield self.finding(ctx, node, message, steps=tuple(steps))


@register
class UseAfterReleaseRule(Rule):
    rule_id = "SSTD016"
    summary = "no use-after-release or non-idempotent double-release"
    needs_project = True
    sanction = (
        "releases documented idempotent in the registry "
        "(SegmentOwner.close_and_unlink, WorkQueue.shutdown) are never "
        "flagged as double-release; there is no annotation — a real "
        "use-after-release is always a bug"
    )
    example = (
        "q = ProcessWorkQueue(n_workers=2)\n"
        "q.shutdown()\n"
        "q.submit(task)     # SSTD016: submit after shutdown\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        walker = _run_walker(ctx)
        for node, message in walker.misuses:
            yield self.finding(ctx, node, message)
