"""SSTD012: the global lock-acquisition order must be acyclic.

The classic distributed-supervisor deadlock needs no blocking call at
all: thread 1 acquires the master lock and then the metrics lock,
thread 2 acquires them in the opposite order, and both wait forever.
No intraprocedural check can see this — the two acquisitions usually
live in different classes, reached through call chains that cross
module boundaries.

This is a **project rule**: it runs once per lint invocation over the
whole-program analysis, not per file.  The call-graph layer
(:mod:`repro.devtools.lint.callgraph`) records every edge
``A -> B`` = "lock ``B`` acquired (possibly transitively, through
resolved calls) while ``A`` is held", with the acquisition site and
the call chain that reaches it.  Here those edges become a directed
graph over global lock ids and every strongly connected component with
a cycle is reported once, anchored at its first edge in deterministic
order, enumerating each edge of a representative cycle with its
acquisition site and chain.

Teams sanction an intended hierarchy with a declaration comment
anywhere in the code base::

    # lock-order: WorkQueueMaster._lock < MetricRegistry._lock

Declared edges are considered audited and leave the cycle graph; an
edge taken in the *opposite* direction of a declaration is its own
finding (a contradiction is a stronger signal than a cycle — somebody
wrote the order down and the code violates it).  Declaring both
directions explicitly sanctions an apparent cycle that has been
audited as safe (e.g. the two paths are proven mutually exclusive).
Re-acquiring a lock already held is reported only when the lock is
provably non-reentrant (a plain ``threading.Lock()`` constructor was
seen); ``RLock`` self-edges are by design.

Lock ids match the declaration pattern by dotted suffix, so
``MetricRegistry._lock`` or plain ``_lock`` both match
``repro.obs.metrics.MetricRegistry._lock`` — use the longer form
whenever two classes share an attribute name.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding, Rule, register

__all__ = ["LockOrderRule"]


def _short(lock: str) -> str:
    parts = lock.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else lock


def _sccs(graph: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components (iterative Tarjan, sorted output)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    nodes = sorted(set(graph) | {s for succ in graph.values() for s in succ})
    for root in nodes:
        if root in index:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work: list[tuple[str, Iterator[str]]] = [
            (root, iter(sorted(graph.get(root, ()))))
        ]
        while work:
            node, successors = work[-1]
            descended = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph.get(succ, ())))))
                    descended = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if descended:
                continue
            work.pop()
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


def _cycle_through(
    anchor: tuple[str, str],
    edges: dict[tuple[str, str], object],
    scope: set[str],
) -> list[tuple[str, str]]:
    """Shortest edge path anchor.to ->* anchor.frm inside ``scope``.

    BFS over the component guarantees a representative cycle exists
    (the anchor's endpoints share an SCC) and keeps it minimal.
    """
    frm, to = anchor
    if frm == to:
        return [anchor]
    parents: dict[str, tuple[str, str]] = {}
    frontier = [to]
    seen = {to}
    while frontier and frm not in seen:
        nxt: list[str] = []
        for node in frontier:
            for key in sorted(edges):
                if key[0] != node or key[1] not in scope or key[1] in seen:
                    continue
                seen.add(key[1])
                parents[key[1]] = key
                nxt.append(key[1])
        frontier = nxt
    path: list[tuple[str, str]] = []
    node = frm
    while node != to:
        key = parents[node]
        path.append(key)
        node = key[0]
    path.reverse()
    return [anchor] + path


@register
class LockOrderRule(Rule):
    rule_id = "SSTD012"
    summary = "global lock acquisition order must be acyclic"
    needs_project = True
    project_rule = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        graph: dict[str, set[str]] = {}
        edges: dict[tuple[str, str], object] = {}
        for (frm, to), edge in sorted(project.lock_edges.items()):
            if frm == to:
                if project.lock_reentrant(frm) is False:
                    chain = " -> ".join(_short(q) for q in edge.chain)
                    yield Finding(
                        rule_id=self.rule_id,
                        message=(
                            f"{_short(frm)} is acquired again while "
                            f"already held (via {chain}) and it is a "
                            "non-reentrant threading.Lock; this "
                            "self-deadlocks — use threading.RLock or "
                            "restructure so the critical sections do "
                            "not nest"
                        ),
                        path=edge.path,
                        line=edge.line,
                        col=edge.col,
                    )
                continue
            if project.sanctioned(frm, to):
                continue
            if project.sanctioned(to, frm):
                chain = " -> ".join(_short(q) for q in edge.chain)
                yield Finding(
                    rule_id=self.rule_id,
                    message=(
                        f"{_short(to)} is declared to precede "
                        f"{_short(frm)} ('# lock-order: {_short(to)} < "
                        f"{_short(frm)}') but {_short(to)} is acquired "
                        f"here while {_short(frm)} is held "
                        f"(via {chain}); this contradicts the declared "
                        "hierarchy — reorder the acquisitions or fix "
                        "the declaration"
                    ),
                    path=edge.path,
                    line=edge.line,
                    col=edge.col,
                )
                continue
            edges[(frm, to)] = edge
            graph.setdefault(frm, set()).add(to)

        for component in _sccs(graph):
            members = set(component)
            component_edges = sorted(
                key
                for key in edges
                if key[0] in members and key[1] in members
            )
            has_cycle = len(component) > 1
            if not has_cycle:
                continue
            anchor = component_edges[0]
            cycle = _cycle_through(anchor, edges, members)
            steps = []
            for key in cycle:
                edge = edges[key]
                chain = " -> ".join(_short(q) for q in edge.chain)
                steps.append(
                    f"{_short(key[0])} then {_short(key[1])} at "
                    f"{edge.path}:{edge.line} (via {chain})"
                )
            locks = ", ".join(_short(lock) for lock in component)
            a, b = anchor
            anchor_edge = edges[anchor]
            yield Finding(
                rule_id=self.rule_id,
                message=(
                    f"potential deadlock: locks {locks} are acquired "
                    f"in a cycle [{'; '.join(steps)}]; pick one global "
                    "order and enforce it, or — after auditing — "
                    f"declare '# lock-order: {_short(a)} < {_short(b)}'"
                ),
                path=anchor_edge.path,
                line=anchor_edge.line,
                col=anchor_edge.col,
            )
