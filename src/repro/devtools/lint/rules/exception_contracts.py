"""SSTD015: exception contracts on runtime APIs.

Callers of the Work Queue runtime program against documented failure
modes — ``submit`` raises ``ValueError`` on a bad priority and
``RuntimeError`` after shutdown, ``drain`` raises ``TimeoutError`` on
deadline.  The contract lives in a ``# raises:`` annotation on the
``def`` line (or the line below it):

    def drain(self, timeout=None):  # raises: TimeoutError

The rule checks the annotation against the *computed* escape set from
the call graph's exception-escape fixpoint
(:attr:`repro.devtools.lint.callgraph.ProjectAnalysis.escapes`): every
exception class that can propagate out of an annotated function must be
declared, and the finding names the raise site and call chain that
leaks it.  Declaring more than escapes is fine — the computed set is an
under-approximation (unresolved calls contribute nothing), so unused
declarations are documentation, not errors.

The rule also flags **swallowed exceptions** in the gated runtime
packages (``repro.workqueue``, ``repro.system``, ``repro.cluster``): a
``except Exception:`` / bare ``except:`` handler that neither re-raises
nor carries a ``# deliberate:`` justification hides faults the paper's
recovery path (§IV-C) is supposed to observe.  SSTD001 already rejects
*anonymous* broad handlers everywhere; this check additionally covers
named ones (``except Exception as exc:``) in the runtime, where
"log and continue" must be an explicit decision.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding, Rule, register
from repro.devtools.lint.flow import DELIBERATE_RE, RAISES_RE

__all__ = ["ExceptionContractRule"]

#: Packages where silently swallowing exceptions needs a sanction.
_GATED_PACKAGES = ("repro.workqueue", "repro.system", "repro.cluster")

_BROAD = frozenset({"Exception", "BaseException"})


def _in_gated_package(module: str) -> bool:
    return any(
        module == package or module.startswith(package + ".")
        for package in _GATED_PACKAGES
    )


def _declared_raises(ctx: FileContext, node: ast.AST) -> "set[str] | None":
    """Classes a ``# raises:`` annotation declares, or None if absent.

    Scans the ``def`` line(s) down to the first body statement, so the
    annotation can sit after the signature or on its own line under a
    multi-line signature.
    """
    body = getattr(node, "body", None)
    last = body[0].lineno if body else node.lineno + 1
    declared: set[str] = set()
    found = False
    for lineno in range(node.lineno, last + 1):
        match = RAISES_RE.search(ctx.line_text(lineno))
        if match:
            found = True
            declared.update(
                name.strip() for name in match.group(1).split(",")
            )
    return declared if found else None


def _covers(declared: set[str], name: str) -> bool:
    short = name.rsplit(".", 1)[-1]
    return name in declared or short in declared


def _contains_raise(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                break
            if isinstance(node, ast.Raise):
                return True
    return False


def _sanctioned(ctx: FileContext, handler: ast.ExceptHandler) -> bool:
    lines = [handler.lineno]
    if handler.body:
        lines.append(handler.body[0].lineno)
    return any(
        DELIBERATE_RE.search(ctx.line_text(lineno)) for lineno in lines
    )


@register
class ExceptionContractRule(Rule):
    rule_id = "SSTD015"
    summary = "exception contracts hold: declared raises cover escapes"
    needs_project = True
    sanction = (
        "# raises: A, B on the def line declares the contract; "
        "# deliberate: <reason> on a broad handler sanctions swallowing "
        "in the runtime packages"
    )
    example = (
        "def drain(self, timeout=None):  # raises: TimeoutError\n"
        "    ...\n"
        "    raise ValueError(msg)   # SSTD015: ValueError escapes\n"
        "                            # but is not declared\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_contracts(ctx)
        yield from self._check_swallows(ctx)

    def _check_contracts(self, ctx: FileContext) -> Iterator[Finding]:
        project = ctx.project
        if project is None or not project.has_module(ctx.module):
            return
        escapes = getattr(project, "escapes", {})
        for node, qual in _qualified_functions(ctx):
            declared = _declared_raises(ctx, node)
            if declared is None:
                continue
            for name, info in sorted(escapes.get(qual, {}).items()):
                if name == "*" or _covers(declared, name):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"'{qual.rsplit('.', 1)[-1]}' declares "
                    f"'# raises: {', '.join(sorted(declared))}' but "
                    f"{info.describe()} can escape; add it to the "
                    "annotation or catch it",
                )

    def _check_swallows(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_gated_package(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or (
                isinstance(node.type, ast.Name) and node.type.id in _BROAD
            )
            if not broad or _contains_raise(node) or _sanctioned(ctx, node):
                continue
            what = (
                "bare except:"
                if node.type is None
                else f"except {node.type.id}:"
            )
            yield self.finding(
                ctx,
                node,
                f"{what} in a runtime package swallows exceptions the "
                "recovery path should observe; re-raise, narrow the "
                "class, or sanction with '# deliberate: <reason>'",
            )


def _qualified_functions(
    ctx: FileContext,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]:
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, f"{ctx.module}.{node.name}"
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sub, f"{ctx.module}.{node.name}.{sub.name}"
