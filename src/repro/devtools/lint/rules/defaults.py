"""SSTD002: no mutable default arguments.

A ``def f(x, acc=[])`` default is created once at function definition
and shared across calls — in long-lived stream processors that is a
slow cross-claim state leak.  Flags list/dict/set displays and calls to
``list``/``dict``/``set``/``bytearray``/``collections.*`` constructors
in positional or keyword-only defaults.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding, Rule, register

__all__ = ["MutableDefaultRule"]

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "Counter",
    "OrderedDict",
}


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(Rule):
    rule_id = "SSTD002"
    summary = "no mutable default arguments"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}(); "
                        "use None and create the object inside the function",
                    )
