"""SSTD lint rules.

Importing this package registers every rule with the engine registry:

- ``SSTD001`` — no bare / silently-swallowing broad ``except``;
- ``SSTD002`` — no mutable default arguments;
- ``SSTD003`` — lock discipline for ``# guarded-by:`` attributes;
- ``SSTD004`` — determinism: all randomness must be seeded;
- ``SSTD005`` — log/exp numerics confined to ``repro.hmm.utils``;
- ``SSTD006`` — public modules must declare ``__all__``.
"""

from repro.devtools.lint.rules.defaults import MutableDefaultRule
from repro.devtools.lint.rules.determinism import UnseededRandomRule
from repro.devtools.lint.rules.exceptions import BroadExceptRule
from repro.devtools.lint.rules.exports import MissingAllRule
from repro.devtools.lint.rules.locks import LockDisciplineRule
from repro.devtools.lint.rules.numerics import RawLogExpRule

__all__ = [
    "BroadExceptRule",
    "LockDisciplineRule",
    "MissingAllRule",
    "MutableDefaultRule",
    "RawLogExpRule",
    "UnseededRandomRule",
]
