"""SSTD lint rules.

Importing this package registers every rule with the engine registry:

- ``SSTD001`` — no bare / silently-swallowing broad ``except``;
- ``SSTD002`` — no mutable default arguments;
- ``SSTD003`` — lock discipline for ``# guarded-by:`` attributes;
- ``SSTD004`` — determinism: all randomness must be seeded;
- ``SSTD005`` — log/exp numerics confined to ``repro.hmm.utils``;
- ``SSTD006`` — public modules must declare ``__all__``;
- ``SSTD007`` — guarded state must not escape its lock scope;
- ``SSTD008`` — no blocking calls while holding a lock;
- ``SSTD009`` — process-queue payloads statically picklable;
- ``SSTD010`` — threads/processes joined, daemonized, or handed off;
- ``SSTD011`` — runtime packages read time through the ``repro.obs``
  ``Clock`` protocol, never ``time.time()``/``monotonic()``/
  ``perf_counter()`` directly;
- ``SSTD012`` — the global lock-acquisition order is acyclic
  (whole-program deadlock detection; ``# lock-order: A < B``
  declarations sanction audited hierarchies);
- ``SSTD013`` — kernel modules (``repro.hmm.batch``, the
  ``repro.hmm.kernels`` backends, ``repro.hmm.utils``,
  ``repro.system.jobs``) never let set/dict-view iteration order reach
  numeric accumulations or task ordering (``# order-independent``
  sanctions commutative exact reductions);
- ``SSTD014`` — acquired resources (shared-memory segments, work
  queues, executors, files) are released on every path, normal and
  exceptional; ``with``/``finally``-covered releases and ownership
  hand-offs are clean, ``# owns-resource:`` sanctions attribute stores;
- ``SSTD015`` — ``# raises:`` exception contracts cover the computed
  escape set, and broad handlers in runtime packages never swallow
  silently without a ``# deliberate: <reason>``;
- ``SSTD016`` — no use-after-release (``submit`` after ``shutdown``,
  ``.array`` after close) and no double-release of callees not
  documented idempotent.

(``SSTD000`` is reserved for engine-level diagnostics — syntax errors
and stale ``noqa`` suppressions — and is emitted by the engine itself,
not by a registered rule.)

SSTD003 and SSTD007/008 share the lockset walker in
:mod:`repro.devtools.lint.flow`; SSTD007/008/009/012 additionally
consume the whole-program call graph in
:mod:`repro.devtools.lint.callgraph` when a file *set* is linted
(``lint_paths``), and degrade to their per-file behaviour for
standalone snippets (``lint_source``).
"""

from repro.devtools.lint.rules.concurrency import (
    BlockingUnderLockRule,
    GuardedEscapeRule,
)
from repro.devtools.lint.rules.defaults import MutableDefaultRule
from repro.devtools.lint.rules.determinism import UnseededRandomRule
from repro.devtools.lint.rules.exception_contracts import (
    ExceptionContractRule,
)
from repro.devtools.lint.rules.exceptions import BroadExceptRule
from repro.devtools.lint.rules.exports import MissingAllRule
from repro.devtools.lint.rules.kernel_determinism import (
    KernelDeterminismRule,
)
from repro.devtools.lint.rules.lifecycle import ThreadLifecycleRule
from repro.devtools.lint.rules.lockorder import LockOrderRule
from repro.devtools.lint.rules.locks import LockDisciplineRule
from repro.devtools.lint.rules.numerics import RawLogExpRule
from repro.devtools.lint.rules.picklability import PicklabilityRule
from repro.devtools.lint.rules.resources import (
    ResourceLeakRule,
    UseAfterReleaseRule,
)
from repro.devtools.lint.rules.timing import DirectClockReadRule

__all__ = [
    "BlockingUnderLockRule",
    "BroadExceptRule",
    "DirectClockReadRule",
    "ExceptionContractRule",
    "GuardedEscapeRule",
    "KernelDeterminismRule",
    "LockDisciplineRule",
    "LockOrderRule",
    "MissingAllRule",
    "MutableDefaultRule",
    "PicklabilityRule",
    "RawLogExpRule",
    "ResourceLeakRule",
    "ThreadLifecycleRule",
    "UnseededRandomRule",
    "UseAfterReleaseRule",
]
