"""SSTD006: public modules must declare ``__all__``.

An explicit ``__all__`` is the module's public contract: it keeps
wildcard imports bounded, makes re-export layers (the package
``__init__`` files) auditable, and lets refactoring PRs see at a glance
what is API and what is implementation detail.  Modules whose name
starts with ``_`` are private and exempt; package ``__init__.py`` files
are public and must comply.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding, Rule, register

__all__ = ["MissingAllRule"]


def _declares_all(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return True
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id == "__all__":
                return True
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id == "__all__":
                return True
    return False


@register
class MissingAllRule(Rule):
    rule_id = "SSTD006"
    summary = "public modules declare __all__"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        stem = Path(ctx.path).stem
        if stem.startswith("_") and stem != "__init__":
            return
        if not _declares_all(ctx.tree):
            yield self.finding(
                ctx,
                ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                f"public module {ctx.module or stem} does not declare "
                "__all__; list its public API explicitly",
            )
