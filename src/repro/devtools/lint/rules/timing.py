"""SSTD011: runtime packages read time through the ``repro.obs`` Clock.

The distributed runtime (``repro.workqueue``, ``repro.system``,
``repro.cluster``) runs against *two* clock domains — the simulation's
virtual clock and real wall time — and the observability layer records
against whichever one the deployment uses.  A direct ``time.time()`` /
``time.monotonic()`` / ``time.perf_counter()`` call hard-wires the wall
domain into code that must also run simulated, bypasses the trace's
clock, and is unmockable in tests.  The sanctioned pattern::

    class Thing:
        def __init__(self, ..., obs: Observability | None = None) -> None:
            self._obs = obs or Observability.from_env()

        def elapsed(self) -> float:
            start = self._obs.clock.now()   # wall or virtual — caller's pick
            ...

``time.sleep`` is not a clock *read* and is governed by SSTD008
(blocking under a lock) instead; packages outside the runtime trio
(benchmarks, devtools, obs itself) may read wall time directly.
Suppress a justified exception with ``# noqa: SSTD011``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding, Rule, register
from repro.devtools.lint.rules._util import ImportMap

__all__ = ["DirectClockReadRule"]

#: Packages whose timing must flow through the Clock protocol.
_GATED_PACKAGES = ("repro.workqueue", "repro.system", "repro.cluster")

#: ``time`` module clock reads (the ``_ns`` variants included).
_CLOCK_READS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)


def _gated(module: str) -> bool:
    return any(
        module == package or module.startswith(package + ".")
        for package in _GATED_PACKAGES
    )


@register
class DirectClockReadRule(Rule):
    rule_id = "SSTD011"
    summary = "runtime packages read time via the repro.obs Clock protocol"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _gated(ctx.module):
            return
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve(node.func)
            if target is None or not target.startswith("time."):
                continue
            fn = target.removeprefix("time.")
            if fn in _CLOCK_READS:
                yield self.finding(
                    ctx,
                    node,
                    f"direct clock read time.{fn}() in runtime package "
                    f"{ctx.module}; read a repro.obs Clock instead "
                    "(WallClock for real executors, VirtualClock for the "
                    "simulation) so timing is traceable and mockable",
                )
