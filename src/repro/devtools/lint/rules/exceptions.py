"""SSTD001: no bare or silently-swallowing broad ``except``.

A distributed run hides errors well enough already — a worker that
swallows an exception turns a crashed Truth Discovery job into a
silently missing estimate.  Bare ``except:`` is always flagged (it also
catches ``KeyboardInterrupt`` / ``SystemExit``).  ``except Exception``
/ ``except BaseException`` is flagged only when the handler *swallows*:
it neither re-raises nor binds the exception for inspection (``as
exc``) — the pattern in :mod:`repro.workqueue.local`, which records
task errors as data, stays legal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding, Rule, register

__all__ = ["BroadExceptRule"]

_BROAD = {"Exception", "BaseException"}


def _broad_names(handler_type: ast.expr | None) -> list[str]:
    """Over-broad exception class names mentioned by the handler."""
    if handler_type is None:
        return []
    exprs = (
        list(handler_type.elts)
        if isinstance(handler_type, ast.Tuple)
        else [handler_type]
    )
    names = []
    for expr in exprs:
        if isinstance(expr, ast.Name) and expr.id in _BROAD:
            names.append(expr.id)
    return names


def _contains_raise(body: list[ast.stmt]) -> bool:
    return any(isinstance(node, ast.Raise) for stmt in body for node in ast.walk(stmt))


@register
class BroadExceptRule(Rule):
    rule_id = "SSTD001"
    summary = "no bare except; broad except must re-raise or bind the error"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' swallows every error including "
                    "KeyboardInterrupt; catch a specific exception",
                )
                continue
            broad = _broad_names(node.type)
            if not broad:
                continue
            if node.name is None and not _contains_raise(node.body):
                yield self.finding(
                    ctx,
                    node,
                    f"'except {broad[0]}' swallows errors silently; "
                    "re-raise, bind it ('as exc') and record it, or "
                    "catch a specific exception",
                )
