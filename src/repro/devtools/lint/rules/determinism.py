"""SSTD004: every random draw must flow from an explicit seed.

Reproducibility of the paper's experiments (and of CI) dies the moment
any module reaches for process-global RNG state.  The sanctioned
pattern, used across the repo, is::

    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)      # seed passed by caller

Flagged:

- ``np.random.default_rng()`` with *no* seed argument;
- any ``np.random.<fn>()`` global-state call (``rand``, ``normal``,
  ``seed``, ``shuffle``, ...) — the legacy singleton API;
- stdlib ``random.<fn>()`` module-level calls, and ``random.Random()``
  without a seed.

Allowed: ``default_rng(seed)``, the ``Generator`` / ``SeedSequence`` /
bit-generator types, and ``random.Random(seed)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding, Rule, register
from repro.devtools.lint.rules._util import ImportMap

__all__ = ["UnseededRandomRule"]

_NUMPY_ALLOWED = {
    "default_rng",  # only with a seed argument, checked separately
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

_STDLIB_ALLOWED = {"Random"}  # only with a seed argument


@register
class UnseededRandomRule(Rule):
    rule_id = "SSTD004"
    summary = "no unseeded or global-state randomness"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve(node.func)
            if target is None:
                continue
            finding = self._check_call(ctx, node, target)
            if finding is not None:
                yield finding

    def _check_call(
        self, ctx: FileContext, node: ast.Call, target: str
    ) -> Finding | None:
        has_args = bool(node.args or node.keywords)
        if target.startswith("numpy.random."):
            fn = target.removeprefix("numpy.random.")
            if fn == "default_rng" and not has_args:
                return self.finding(
                    ctx,
                    node,
                    "np.random.default_rng() without a seed is "
                    "irreproducible; thread an explicit seed or Generator "
                    "through the caller",
                )
            if "." not in fn and fn not in _NUMPY_ALLOWED:
                return self.finding(
                    ctx,
                    node,
                    f"np.random.{fn}() uses numpy's process-global RNG "
                    "state; use a seeded np.random.Generator instead",
                )
        elif target.startswith("random."):
            fn = target.removeprefix("random.")
            if "." in fn:
                return None
            if fn in _STDLIB_ALLOWED and has_args:
                return None
            return self.finding(
                ctx,
                node,
                f"random.{fn}() draws from the stdlib's global (or "
                "unseeded) RNG; use a seeded np.random.Generator or "
                "random.Random(seed)",
            )
        return None
