"""SSTD013: kernel code must not order work by set/dict-view iteration.

The batched HMM kernels and the job scheduler are the reproducibility
surface of the system: two runs over the same claim set must produce
bit-identical posteriors and the same task order.  Iterating a ``set``
(or ``frozenset``) breaks that silently — iteration order depends on
the per-process hash seed (``PYTHONHASHSEED``), so feeding it into a
floating-point accumulation reorders the additions (FP addition is not
associative) and feeding it into a work list reorders dispatch.  Dict
views are insertion-ordered in CPython, but in kernel code the
insertion order itself routinely derives from set operations or
directory listings, so the same discipline applies: make the order
explicit.

The rule only fires in the kernel modules (:data:`TARGET_MODULES` —
``repro.hmm.batch``, ``repro.hmm.utils``, ``repro.system.jobs`` and the
``repro.hmm.kernels`` backend package); everywhere else set iteration
is fine and linting it would be noise.
It flags:

- ``for x in <set-like>`` whose body *accumulates* (any augmented
  assignment, ``.append``/``.extend``/``.insert`` on a list, or a
  ``yield``) — order reaches the result;
- ``list(...)``/``tuple(...)``/``sum(...)`` over a set-like — an
  ordered (or order-sensitively reduced) value built straight from an
  unordered one;
- list comprehensions drawing from a set-like (generator expressions
  are judged at the consuming call site instead).

Order-insensitive consumers — ``sorted``, ``min``, ``max``, ``any``,
``all``, ``len``, ``set``, ``frozenset`` — are never flagged;
``sorted(...)`` is the canonical fix.  A genuinely order-free use
(e.g. integer counters, commutative exact reductions) is sanctioned in
place with an ``# order-independent`` comment on the line.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Rule, register

__all__ = ["KernelDeterminismRule", "TARGET_MODULES"]

#: Modules whose outputs must be bit-reproducible across runs.
TARGET_MODULES = (
    "repro.hmm.batch",
    "repro.hmm.kernels",
    "repro.hmm.kernels.numba_fast",
    "repro.hmm.kernels.numpy_ref",
    "repro.hmm.utils",
    "repro.system.jobs",
)

ORDER_INDEPENDENT_RE = re.compile(r"#\s*order-independent\b")

_SET_CTORS = {"set", "frozenset"}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}
_DICT_VIEWS = {"keys", "values", "items"}
_ORDERING_CONSUMERS = {"list", "tuple", "sum"}
_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet"}


def _annotation_is_set(annotation: "ast.expr | None") -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    return isinstance(node, ast.Name) and node.id in _SET_ANNOTATIONS


class _SetTracker:
    """Names bound to set-like values within one function body."""

    def __init__(self, fn: ast.AST) -> None:
        self.names: set[str] = set()
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            ):
                if _annotation_is_set(arg.annotation):
                    self.names.add(arg.arg)
        # Two passes so `a = b` picks up a later-classified `b`.
        for _ in range(2):
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign):
                    if self.is_setlike(node.value):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                self.names.add(target.id)
                elif isinstance(node, ast.AnnAssign):
                    if isinstance(node.target, ast.Name) and (
                        _annotation_is_set(node.annotation)
                        or (
                            node.value is not None
                            and self.is_setlike(node.value)
                        )
                    ):
                        self.names.add(node.target.id)

    def is_setlike(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_setlike(node.left) or self.is_setlike(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CTORS:
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in _SET_METHODS and self.is_setlike(func.value):
                    return True
        return False

    def unordered_kind(self, node: ast.expr) -> "str | None":
        """Describe an order-unstable iteration source, or ``None``."""
        if self.is_setlike(node):
            return "set"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEWS
            and not node.args
        ):
            return f"dict .{node.func.attr}() view"
        return None


def _walk_shallow(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs.

    Nested functions (and methods of nested classes) are visited by
    their own top-level pass with their own :class:`_SetTracker`, so
    descending here would double-report them.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _accumulates(body: list[ast.stmt]) -> "str | None":
    """Why the loop body is order-sensitive, or ``None``."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                return "accumulates with an augmented assignment"
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields in iteration order"
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in {"append", "extend", "insert"}
            ):
                return f"builds an ordered list via .{node.func.attr}()"
    return None


@register
class KernelDeterminismRule(Rule):
    rule_id = "SSTD013"
    summary = "kernel modules must not depend on set/dict-view order"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module not in TARGET_MODULES:
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            tracker = _SetTracker(fn)
            yield from self._check_function(ctx, fn, tracker)

    def _sanctioned(self, ctx: FileContext, node: ast.AST) -> bool:
        return bool(ORDER_INDEPENDENT_RE.search(ctx.line_text(node.lineno)))

    def _check_function(
        self, ctx: FileContext, fn: ast.AST, tracker: _SetTracker
    ) -> Iterator[Finding]:
        for node in _walk_shallow(fn):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                kind = tracker.unordered_kind(node.iter)
                if kind is None or self._sanctioned(ctx, node):
                    continue
                why = _accumulates(node.body)
                if why is None:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"loop over a {kind} {why}; iteration order is not "
                    "reproducible across runs — iterate "
                    "'sorted(...)' (or mark the line "
                    "'# order-independent' if the reduction is "
                    "commutative and exact)",
                )
            elif isinstance(node, ast.Call):
                func = node.func
                if not (
                    isinstance(func, ast.Name)
                    and func.id in _ORDERING_CONSUMERS
                    and node.args
                ):
                    continue
                kind = tracker.unordered_kind(node.args[0])
                if kind is None or self._sanctioned(ctx, node):
                    continue
                verb = (
                    "reduces"
                    if func.id == "sum"
                    else "materializes an ordered sequence from"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"{func.id}() {verb} a {kind}; the result depends "
                    "on hash-randomized iteration order — apply "
                    "'sorted(...)' first (or mark the line "
                    "'# order-independent')",
                )
            elif isinstance(node, ast.ListComp):
                if not node.generators:
                    continue
                kind = tracker.unordered_kind(node.generators[0].iter)
                if kind is None or self._sanctioned(ctx, node):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"list comprehension over a {kind} fixes an "
                    "arbitrary order into the result — comprehend over "
                    "'sorted(...)' (or mark the line "
                    "'# order-independent')",
                )
