"""Shared helpers for SSTD lint rules: import tracking, dotted names.

The implementations moved to :mod:`repro.devtools.lint.names` so the
flow analyzer can share them without a ``rules`` package cycle; this
module re-exports them for the rule modules.
"""

from __future__ import annotations

from repro.devtools.lint.names import ImportMap, dotted_name

__all__ = ["ImportMap", "dotted_name"]
