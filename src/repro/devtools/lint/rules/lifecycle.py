"""SSTD010: thread/process lifecycle — no leaked workers.

Every ``threading.Thread`` / ``multiprocessing.Process`` the tree
creates must end up in exactly one of three states the master can
reason about:

- **daemonized** — constructed with ``daemon=True`` (or ``.daemon =
  True`` before start), so interpreter exit does not hang on it;
- **joined** — ``<binding>.join(...)`` appears somewhere in the file,
  including the ``for t in self._threads: t.join()`` loop form;
- **handed off** — the object is returned, passed to a call, or placed
  in a container (pool-registration patterns like
  ``_WorkerHandle(process, ...)``), making some other component
  responsible for it.

A worker bound to a name and then merely ``start()``-ed — or started
inline, ``Thread(...).start()`` — leaks: nothing can ever join it, and
a non-daemon leak blocks interpreter shutdown (the flake class PR 2's
worker-death tests are most exposed to).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding, Rule, register
from repro.devtools.lint.flow import classify_value
from repro.devtools.lint.names import dotted_name

__all__ = ["ThreadLifecycleRule"]


def _parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _joined_receivers(tree: ast.Module) -> set[str]:
    """Dotted receivers ``r`` with an ``r.join(...)`` call, incl. loops."""
    joined: set[str] = set()
    loop_vars: dict[str, str] = {}  # loop var -> iterated dotted source
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            source = dotted_name(node.iter)
            if source is not None and isinstance(node.target, ast.Name):
                loop_vars[node.target.id] = source
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
        ):
            continue
        receiver = dotted_name(node.func.value)
        if receiver is None:
            continue
        joined.add(receiver)
        if receiver in loop_vars:
            joined.add(loop_vars[receiver])
    return joined


def _daemonized_receivers(tree: ast.Module) -> set[str]:
    """Dotted receivers with a ``<r>.daemon = True`` assignment."""
    daemonized: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not (
            isinstance(node.value, ast.Constant) and node.value.value is True
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Attribute) and target.attr == "daemon":
                receiver = dotted_name(target.value)
                if receiver is not None:
                    daemonized.add(receiver)
    return daemonized


def _escapes(
    tree: ast.Module, binding: str, parents: dict[ast.AST, ast.AST]
) -> bool:
    """True when ``binding`` is handed off: returned, passed, collected.

    ``x.join()`` / ``x.start()`` read the binding through an Attribute
    parent; any other Load use (call argument, return value, container
    literal) transfers ownership to the receiver.
    """
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Name, ast.Attribute)):
            continue
        if dotted_name(node) != binding:
            continue
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            continue
        if not isinstance(parents.get(node), ast.Attribute):
            return True
    return False


@register
class ThreadLifecycleRule(Rule):
    rule_id = "SSTD010"
    summary = "threads/processes are joined, daemonized, or handed off"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        parents = _parent_map(ctx.tree)
        joined = _joined_receivers(ctx.tree)
        daemonized = _daemonized_receivers(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            info = classify_value(node)
            if info is None or info.kind not in ("thread", "process"):
                continue
            if info.daemon:
                continue
            finding = self._check_ctor(
                ctx, node, info.kind, parents, joined, daemonized
            )
            if finding is not None:
                yield finding

    def _check_ctor(
        self,
        ctx: FileContext,
        node: ast.Call,
        kind: str,
        parents: dict[ast.AST, ast.AST],
        joined: set[str],
        daemonized: set[str],
    ) -> Finding | None:
        parent = parents.get(node)
        # `Thread(...).start()` — started inline, can never be joined.
        if (
            isinstance(parent, ast.Attribute)
            and parent.attr == "start"
            and isinstance(parents.get(parent), ast.Call)
        ):
            return self.finding(
                ctx,
                node,
                f"{kind} is started inline and never joined; bind it and "
                "join it, pass daemon=True, or register it with a pool",
            )
        # Bound to a name: require a join, a daemon flag, or an escape.
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            for target in targets:
                binding = dotted_name(target)
                if binding is None:
                    continue
                if binding in joined or binding in daemonized:
                    return None
                if _escapes(ctx.tree, binding, parents):
                    return None
                return self.finding(
                    ctx,
                    node,
                    f"{kind} bound to {binding!r} is never joined, "
                    "daemonized, or handed off; a leaked non-daemon "
                    f"{kind} blocks interpreter shutdown",
                )
        # Anything else (call argument, return, container element) is a
        # hand-off; ownership lies with the receiver.
        return None
