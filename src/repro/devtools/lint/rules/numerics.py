"""SSTD005: log/exp numerics confined to the sanctioned helpers.

Probability code that calls ``np.log`` / ``np.exp`` directly is one
zero-probability away from ``-inf`` propagating through an EM update
(see the renormalization drift discussed in Kayaalp et al., *Hidden
Markov Modeling over Graphs*).  Inside the probability-bearing packages
(``repro.hmm``, ``repro.core``) all log-space math must go through the
helpers in :mod:`repro.hmm.utils` (``log_mask_zero``,
``normal_log_densities``, ``normalize_rows``, ...), which handle zeros,
masking and scaling explicitly.  Modules outside those packages (e.g.
traffic models using ``exp`` for decay curves) are not probability
code and are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding, Rule, register
from repro.devtools.lint.rules._util import ImportMap

__all__ = ["RawLogExpRule"]

#: Packages whose arrays are (log-)probabilities.
PROBABILITY_PACKAGES = ("repro.hmm", "repro.core")

#: Modules allowed to use raw log/exp — the sanctioned helper layer.
SANCTIONED_MODULES = ("repro.hmm.utils",)

_BANNED_FUNCTIONS = {
    "numpy.log",
    "numpy.log2",
    "numpy.log10",
    "numpy.log1p",
    "numpy.exp",
    "numpy.expm1",
    "numpy.exp2",
    "numpy.divide",
    "numpy.true_divide",
    "math.log",
    "math.log2",
    "math.log10",
    "math.log1p",
    "math.exp",
    "math.expm1",
    "scipy.special.logsumexp",
    "scipy.special.softmax",
}


@register
class RawLogExpRule(Rule):
    rule_id = "SSTD005"
    summary = "log/exp on probabilities only via repro.hmm.utils helpers"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module = ctx.module
        if not module.startswith(PROBABILITY_PACKAGES):
            return
        if module in SANCTIONED_MODULES:
            return
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = imports.resolve(node.func)
            if target in _BANNED_FUNCTIONS:
                short = target.rsplit(".", 1)[-1]
                yield self.finding(
                    ctx,
                    node,
                    f"raw {short}() in probability module {module}; route "
                    "log-space math through repro.hmm.utils (log_mask_zero, "
                    "normal_log_densities, normalize_rows) or add a "
                    "justified '# noqa: SSTD005'",
                )
