"""SSTD009: process-queue payloads must be statically picklable.

:class:`repro.workqueue.process.ProcessWorkQueue` ships task payloads
across a process boundary, so they must pickle.  The runtime rejects
lambdas and closures at submit time, but only once the code path runs —
this rule rejects them at lint time:

- ``PayloadSpec(<lambda>)`` or ``PayloadSpec(<function defined inside
  another function>)`` — the callable cannot be imported by name on the
  worker side;
- unpicklable values anywhere in a ``PayloadSpec``'s arguments: lambda
  expressions, generator expressions, and synchronization primitives
  (``threading.Lock()``/``RLock``/``Condition``/``Event``/
  ``Semaphore``);
- ``<queue>.submit(Task(..., fn=<lambda/closure>))`` when ``<queue>``
  is a ``ProcessWorkQueue`` — recognized either from a same-file
  constructor assignment, or (when the project call graph is attached)
  from the whole-program resolution of the receiver: an annotated
  parameter, a ``self.queue`` attribute typed in ``__init__``, or an
  attribute chain crossing modules all resolve to
  ``ProcessWorkQueue.submit`` and get the same scrutiny.  Thread and
  simulated backends accept closures, so only process-bound submits
  are flagged.

The sanctioned pattern is a module-level function wrapped in a spec —
see :func:`repro.system.jobs.decode_claim_payload`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.engine import FileContext, Finding, Rule, register
from repro.devtools.lint.names import ImportMap, dotted_name

__all__ = ["PicklabilityRule"]

_SYNC_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore"}
)


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function (closures)."""
    nested: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(node):
            if inner is node:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


def _process_queue_names(tree: ast.Module) -> set[str]:
    """Dotted names bound to a ``ProcessWorkQueue(...)`` in this file."""
    bound: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        ctor = dotted_name(value.func) or ""
        if ctor.rsplit(".", 1)[-1] != "ProcessWorkQueue":
            continue
        for target in node.targets:
            name = dotted_name(target)
            if name is not None:
                bound.add(name)
    return bound


@register
class PicklabilityRule(Rule):
    rule_id = "SSTD009"
    summary = "process-queue payloads are statically picklable"
    needs_project = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        nested = _nested_function_names(ctx.tree)
        process_queues = _process_queue_names(ctx.tree)
        checked: set[tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func) or ""
            last = callee.rsplit(".", 1)[-1]
            if last == "PayloadSpec":
                yield from self._check_payload_spec(ctx, node, nested, imports)
            elif last == "submit":
                receiver = callee.rsplit(".", 1)[0] if "." in callee else ""
                if receiver in process_queues:
                    checked.add((node.lineno, node.col_offset))
                    yield from self._check_process_submit(ctx, node, nested)
        yield from self._check_resolved_submits(ctx, nested, checked)

    def _check_resolved_submits(
        self,
        ctx: FileContext,
        nested: set[str],
        checked: set[tuple[int, int]],
    ) -> Iterator[Finding]:
        """Submits whose receiver the *project* typed as ProcessWorkQueue."""
        project = getattr(ctx, "project", None)
        if project is None or not project.has_module(ctx.module):
            return
        calls_at: dict[tuple[int, int], ast.Call] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                calls_at.setdefault((node.lineno, node.col_offset), node)
        for site in project.resolved_calls(ctx.module):
            if not any(
                target.endswith(".ProcessWorkQueue.submit")
                for target in site.targets
            ):
                continue
            pos = (site.line, site.col)
            if pos in checked:
                continue
            checked.add(pos)
            call = calls_at.get(pos)
            if call is not None:
                yield from self._check_process_submit(ctx, call, nested)

    # -- PayloadSpec construction ---------------------------------------
    def _payload_callable(self, call: ast.Call) -> ast.expr | None:
        if call.args:
            return call.args[0]
        for kw in call.keywords:
            if kw.arg == "fn":
                return kw.value
        return None

    def _check_payload_spec(
        self,
        ctx: FileContext,
        call: ast.Call,
        nested: set[str],
        imports: ImportMap,
    ) -> Iterator[Finding]:
        fn = self._payload_callable(call)
        if isinstance(fn, ast.Lambda):
            yield self.finding(
                ctx,
                fn,
                "PayloadSpec payload is a lambda; lambdas cannot be "
                "pickled across a process boundary — use a module-level "
                "function (the decode_claim_payload pattern)",
            )
        elif isinstance(fn, ast.Name) and fn.id in nested:
            yield self.finding(
                ctx,
                fn,
                f"PayloadSpec payload {fn.id!r} is defined inside a "
                "function, so it is a closure and cannot be pickled; "
                "move it to module level",
            )
        for arg in list(call.args[1:]) + [
            kw.value for kw in call.keywords if kw.arg != "fn"
        ]:
            yield from self._check_argument_tree(ctx, arg, imports)

    def _check_argument_tree(
        self, ctx: FileContext, arg: ast.expr, imports: ImportMap
    ) -> Iterator[Finding]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Lambda):
                yield self.finding(
                    ctx,
                    node,
                    "lambda inside PayloadSpec arguments cannot be "
                    "pickled; pass data, not code",
                )
            elif isinstance(node, ast.GeneratorExp):
                yield self.finding(
                    ctx,
                    node,
                    "generator inside PayloadSpec arguments cannot be "
                    "pickled; materialize it (tuple(...)) first",
                )
            elif isinstance(node, ast.Call):
                ctor = imports.resolve(node.func) or ""
                last = ctor.rsplit(".", 1)[-1]
                root = ctor.split(".", 1)[0]
                if last in _SYNC_CTORS and root in (
                    "threading",
                    "multiprocessing",
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{last} object inside PayloadSpec arguments "
                        "cannot be pickled; synchronization primitives "
                        "stay on the master side",
                    )

    # -- submits to a ProcessWorkQueue ----------------------------------
    def _check_process_submit(
        self, ctx: FileContext, call: ast.Call, nested: set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(call):
            if isinstance(node, ast.Lambda):
                yield self.finding(
                    ctx,
                    node,
                    "lambda submitted to a ProcessWorkQueue cannot cross "
                    "the process boundary; wrap a module-level function "
                    "in repro.workqueue.task.PayloadSpec",
                )
            elif (
                isinstance(node, ast.keyword)
                and node.arg == "fn"
                and isinstance(node.value, ast.Name)
                and node.value.id in nested
            ):
                yield self.finding(
                    ctx,
                    node.value,
                    f"closure {node.value.id!r} submitted to a "
                    "ProcessWorkQueue cannot cross the process boundary; "
                    "move it to module level and wrap it in PayloadSpec",
                )
