"""Core of the SSTD lint engine: contexts, rules, registry, runner.

The engine is deliberately small — a file is parsed once into an
:class:`ast` tree, each registered :class:`Rule` walks it and yields
:class:`Finding` records, and ``# noqa: SSTD###`` comments on the
flagged physical line suppress findings the author has justified.

Suppressions are themselves audited: when the full rule set runs, a
``# noqa`` comment that silences nothing is reported as ``SSTD000``
(stale suppression) so justifications cannot outlive the code they
excused.  Stale-suppression findings are not themselves suppressible.

Adding a rule:

>>> @register
... class MyRule(Rule):
...     rule_id = "SSTD042"
...     summary = "what the rule enforces"
...     def check(self, ctx):
...         for node in ast.walk(ctx.tree):
...             ...
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "FileContext",
    "Finding",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "register",
    "stale_noqa_findings",
]

_NOQA_RE = re.compile(
    r"#\s*noqa(?P<codes>:\s*[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)?",
    re.IGNORECASE,
)

_SKIP_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".pytest_cache", "build", "dist"}
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint finding, anchored to a source position."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass(slots=True)
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    module: str = ""

    @classmethod
    def from_source(cls, source: str, path: str, module: str = "") -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            module=module or module_name_for(Path(path)),
        )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        """``# noqa`` on the flagged line silences the finding.

        A bare ``# noqa`` silences every rule; ``# noqa: SSTD003`` (or a
        comma-separated list) silences only the named rules.
        """
        match = _NOQA_RE.search(self.line_text(finding.line))
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True
        listed = {c.strip().upper() for c in codes.lstrip(":").split(",")}
        return finding.rule_id.upper() in listed


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, anchored at the ``repro`` package.

    ``src/repro/hmm/base.py`` -> ``repro.hmm.base``; package
    ``__init__.py`` files map to the package itself.  Files outside a
    ``repro`` tree fall back to their stem so synthetic fixtures still
    get a usable name.
    """
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    return ".".join(parts)


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` (``SSTD###``) and ``summary`` and
    implement :meth:`check`, yielding findings; helpers
    :meth:`finding` keeps positions consistent.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


#: Registry of rule classes keyed by rule id, filled by :func:`register`.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} must set rule_id")
    if rule_cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    RULE_REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate registered rules, optionally restricted to ``select``."""
    # Importing the rules package populates the registry on first use.
    from repro.devtools.lint import rules as _rules  # noqa: F401

    if select is None:
        ids = sorted(RULE_REGISTRY)
    else:
        ids = []
        for rule_id in select:
            normalized = rule_id.strip().upper()
            if normalized not in RULE_REGISTRY:
                known = ", ".join(sorted(RULE_REGISTRY))
                raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
            ids.append(normalized)
    return [RULE_REGISTRY[rule_id]() for rule_id in ids]


def _noqa_comments(
    source: str,
) -> dict[int, tuple[frozenset[str] | None, int]]:
    """Map line -> (suppressed codes or None for bare, column) per ``noqa``.

    Tokenize-based so ``# noqa`` spelled inside a string literal or
    docstring (this module's own docstrings, for one) is not mistaken
    for a suppression the way a per-line regex would.
    """
    comments: dict[int, tuple[frozenset[str] | None, int]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            codes = match.group("codes")
            parsed = (
                None
                if codes is None
                else frozenset(
                    c.strip().upper() for c in codes.lstrip(":").split(",")
                )
            )
            comments[tok.start[0]] = (parsed, tok.start[1] + match.start())
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return comments


def stale_noqa_findings(
    source: str, path: str, silenced_by_line: dict[int, set[str]]
) -> list[Finding]:
    """SSTD000 findings for ``noqa`` comments that suppress nothing.

    ``silenced_by_line`` maps line numbers to the rule ids whose
    findings a suppression on that line actually silenced this run.
    Suppressions listing only foreign codes (``# noqa: F401``) belong
    to other tools and are never judged; mixed lists are judged only
    if none of their SSTD codes fired.
    """
    findings: list[Finding] = []
    for line, (codes, col) in sorted(_noqa_comments(source).items()):
        silenced = silenced_by_line.get(line, set())
        if codes is None:
            if silenced:
                continue
            message = (
                "stale suppression: bare '# noqa' silences no finding on "
                "this line; delete the comment"
            )
        else:
            sstd = {c for c in codes if c.startswith("SSTD")}
            if not sstd:
                continue  # another tool's suppression; not ours to judge
            if sstd & silenced:
                continue
            listed = ", ".join(sorted(sstd))
            message = (
                f"stale suppression: '# noqa: {listed}' silences no "
                f"{listed} finding on this line; delete or update the "
                "comment"
            )
        findings.append(
            Finding(
                rule_id="SSTD000",
                message=message,
                path=path,
                line=line,
                col=col,
            )
        )
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule] | None = None,
    module: str = "",
    audit_noqa: bool | None = None,
) -> list[Finding]:
    """Lint a source string; returns unsuppressed findings sorted by position.

    ``audit_noqa`` adds the stale-suppression audit (SSTD000).  The
    default (``None``) enables it exactly when the full registered rule
    set runs — a partial ``--select`` run cannot tell a stale ``noqa``
    from one whose rule simply was not selected.  Stale-suppression
    findings bypass ``noqa`` handling: a suppression cannot vouch for
    itself.
    """
    if rules is None:
        rules = all_rules()
    if audit_noqa is None:
        registered = set(RULE_REGISTRY)
        audit_noqa = bool(registered) and {r.rule_id for r in rules} >= registered
    ctx = FileContext.from_source(source, path=path, module=module)
    findings: list[Finding] = []
    silenced_by_line: dict[int, set[str]] = {}
    for rule in rules:
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding):
                silenced_by_line.setdefault(finding.line, set()).add(
                    finding.rule_id
                )
            else:
                findings.append(finding)
    if audit_noqa:
        findings.extend(stale_noqa_findings(source, path, silenced_by_line))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_file(
    path: Path,
    rules: Sequence[Rule] | None = None,
    audit_noqa: bool | None = None,
) -> list[Finding]:
    """Lint one file.  Syntax errors surface as an SSTD000 finding."""
    try:
        source = path.read_text(encoding="utf-8")
        return lint_source(
            source, path=str(path), rules=rules, audit_noqa=audit_noqa
        )
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="SSTD000",
                message=f"syntax error: {exc.msg}",
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint."""
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = set(sub.parts)
                if parts & _SKIP_DIR_NAMES:
                    continue
                if any(part.endswith(".egg-info") for part in sub.parts):
                    continue
                yield sub
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Iterable[Path],
    rules: Sequence[Rule] | None = None,
    audit_noqa: bool | None = None,
    cache: "object | None" = None,
) -> list[Finding]:
    """Lint every python file under ``paths``.

    ``cache``, when given, is a :class:`repro.devtools.lint.cache.LintCache`;
    files whose content (and lint configuration) is unchanged reuse the
    stored findings instead of re-running the rules.
    """
    if rules is None:
        rules = all_rules()
    rule_ids = tuple(sorted(rule.rule_id for rule in rules))
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        if cache is not None:
            cached = cache.get(file_path, rule_ids, audit_noqa)
            if cached is not None:
                findings.extend(cached)
                continue
        file_findings = lint_file(file_path, rules=rules, audit_noqa=audit_noqa)
        if cache is not None:
            cache.put(file_path, rule_ids, audit_noqa, file_findings)
        findings.extend(file_findings)
    return findings
