"""Core of the SSTD lint engine: contexts, rules, registry, runner.

The engine is deliberately small — a file is parsed once into an
:class:`ast` tree, each registered :class:`Rule` walks it and yields
:class:`Finding` records, and ``# noqa: SSTD###`` comments on the
flagged physical line suppress findings the author has justified.

Since PR 6 the runner is whole-program: before any rule runs,
:mod:`repro.devtools.lint.callgraph` reduces every file to a
per-module summary and resolves calls across the file set, and rules
see the resulting :class:`~repro.devtools.lint.callgraph.ProjectAnalysis`
as ``ctx.project``.  Two rule flavors exist:

- per-file rules (``check(ctx)``) — run once per file, cacheable by
  (file content, dependency-closure digest);
- project rules (``project_rule = True``, ``check_project(project)``)
  — run once per lint invocation over the global analysis (SSTD012's
  lock-order graph); their findings anchor to ordinary source lines
  and respect ``noqa`` there, but are never cached.

Suppressions are themselves audited: when the full rule set runs, a
``# noqa`` comment that silences nothing is reported as ``SSTD000``
(stale suppression) so justifications cannot outlive the code they
excused.  Stale-suppression findings are not themselves suppressible.

Adding a rule:

>>> @register
... class MyRule(Rule):
...     rule_id = "SSTD042"
...     summary = "what the rule enforces"
...     def check(self, ctx):
...         for node in ast.walk(ctx.tree):
...             ...
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "FileContext",
    "Finding",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "count_noqa_comments",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "register",
    "stale_noqa_findings",
]

_NOQA_RE = re.compile(
    r"#\s*noqa(?P<codes>:\s*[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)?",
    re.IGNORECASE,
)

_SKIP_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".pytest_cache", "build", "dist"}
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint finding, anchored to a source position."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int
    #: Optional path trace: ``(path, line, col, note)`` per step, e.g.
    #: acquire site → leak site for SSTD014.  Rendered as SARIF
    #: codeFlows and round-tripped through the findings cache.
    steps: tuple[tuple[str, int, int, str], ...] = ()

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }
        if self.steps:
            out["steps"] = [list(step) for step in self.steps]
        return out


@dataclass(slots=True)
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    module: str = ""
    #: The whole-program analysis when linting a file set
    #: (:class:`repro.devtools.lint.callgraph.ProjectAnalysis`), else None.
    project: object | None = None

    @classmethod
    def from_source(cls, source: str, path: str, module: str = "") -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            module=module or module_name_for(Path(path)),
        )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        """``# noqa`` on the flagged line silences the finding.

        A bare ``# noqa`` silences every rule; ``# noqa: SSTD003`` (or a
        comma-separated list) silences only the named rules.
        """
        return _line_suppresses(self.line_text(finding.line), finding.rule_id)


def _line_suppresses(line_text: str, rule_id: str) -> bool:
    """``noqa`` check against a raw source line (no context needed)."""
    match = _NOQA_RE.search(line_text)
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    listed = {c.strip().upper() for c in codes.lstrip(":").split(",")}
    return rule_id.upper() in listed


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, anchored at the ``repro`` package.

    ``src/repro/hmm/base.py`` -> ``repro.hmm.base``; package
    ``__init__.py`` files map to the package itself.  Files outside a
    ``repro`` tree fall back to their stem so synthetic fixtures still
    get a usable name.
    """
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    return ".".join(parts)


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` (``SSTD###``) and ``summary`` and
    implement :meth:`check`, yielding findings; helper
    :meth:`finding` keeps positions consistent.  Rules that consume
    the project call graph set ``needs_project`` (per-file rules that
    read ``ctx.project``) or ``project_rule`` (global rules that
    implement :meth:`check_project` instead and run once per
    invocation, uncached).
    """

    rule_id: str = ""
    summary: str = ""
    #: Per-file rule that reads ``ctx.project`` when available.
    needs_project: bool = False
    #: Global rule: :meth:`check_project` runs once per invocation.
    project_rule: bool = False
    #: Sanction syntax (annotation comment) that silences the rule
    #: without ``noqa``; shown by ``--explain``.  Empty = noqa only.
    sanction: str = ""
    #: Minimal flagged example, shown by ``--explain``.
    example: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, project: object) -> Iterator[Finding]:
        """Findings computed from the whole-program analysis."""
        return iter(())

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        steps: tuple[tuple[str, int, int, str], ...] = (),
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            steps=steps,
        )


#: Registry of rule classes keyed by rule id, filled by :func:`register`.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} must set rule_id")
    if rule_cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    RULE_REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate registered rules, optionally restricted to ``select``."""
    # Importing the rules package populates the registry on first use.
    from repro.devtools.lint import rules as _rules  # noqa: F401

    if select is None:
        ids = sorted(RULE_REGISTRY)
    else:
        ids = []
        for rule_id in select:
            normalized = rule_id.strip().upper()
            if normalized not in RULE_REGISTRY:
                known = ", ".join(sorted(RULE_REGISTRY))
                raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
            ids.append(normalized)
    return [RULE_REGISTRY[rule_id]() for rule_id in ids]


def _noqa_comments(
    source: str,
) -> dict[int, tuple[frozenset[str] | None, int]]:
    """Map line -> (suppressed codes or None for bare, column) per ``noqa``.

    Tokenize-based so ``# noqa`` spelled inside a string literal or
    docstring (this module's own docstrings, for one) is not mistaken
    for a suppression the way a per-line regex would.
    """
    comments: dict[int, tuple[frozenset[str] | None, int]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            codes = match.group("codes")
            parsed = (
                None
                if codes is None
                else frozenset(
                    c.strip().upper() for c in codes.lstrip(":").split(",")
                )
            )
            comments[tok.start[0]] = (parsed, tok.start[1] + match.start())
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return comments


def count_noqa_comments(path: Path) -> int:
    """Number of ``noqa`` suppression comments in ``path``.

    Feeds the CLI's ``--noqa-budget`` gate; unreadable or untokenizable
    files count zero (they surface as SSTD000 findings instead).
    """
    try:
        source = path.read_text(encoding="utf-8")
    except OSError:
        return 0
    return len(_noqa_comments(source))


def _stale_from_comments(
    comments: dict[int, tuple[frozenset[str] | None, int]],
    path: str,
    silenced_by_line: dict[int, set[str]],
) -> list[Finding]:
    """SSTD000 findings for suppressions that silenced nothing."""
    findings: list[Finding] = []
    for line, (codes, col) in sorted(comments.items()):
        silenced = silenced_by_line.get(line, set())
        if codes is None:
            if silenced:
                continue
            message = (
                "stale suppression: bare '# noqa' silences no finding on "
                "this line; delete the comment"
            )
        else:
            sstd = {c for c in codes if c.startswith("SSTD")}
            if not sstd:
                continue  # another tool's suppression; not ours to judge
            if sstd & silenced:
                continue
            listed = ", ".join(sorted(sstd))
            message = (
                f"stale suppression: '# noqa: {listed}' silences no "
                f"{listed} finding on this line; delete or update the "
                "comment"
            )
        findings.append(
            Finding(
                rule_id="SSTD000",
                message=message,
                path=path,
                line=line,
                col=col,
            )
        )
    return findings


def stale_noqa_findings(
    source: str, path: str, silenced_by_line: dict[int, set[str]]
) -> list[Finding]:
    """SSTD000 findings for ``noqa`` comments that suppress nothing.

    ``silenced_by_line`` maps line numbers to the rule ids whose
    findings a suppression on that line actually silenced this run.
    Suppressions listing only foreign codes (``# noqa: F401``) belong
    to other tools and are never judged; mixed lists are judged only
    if none of their SSTD codes fired.
    """
    return _stale_from_comments(_noqa_comments(source), path, silenced_by_line)


def _audit_flag(rules: Sequence[Rule], audit_noqa: bool | None) -> bool:
    """Resolve the stale-``noqa`` audit default.

    ``None`` enables the audit exactly when the full registered rule
    set runs — a partial ``--select`` run cannot tell a stale ``noqa``
    from one whose rule simply was not selected.
    """
    if audit_noqa is not None:
        return audit_noqa
    registered = set(RULE_REGISTRY)
    return bool(registered) and {r.rule_id for r in rules} >= registered


def _check_file(
    ctx: FileContext, rules: Sequence[Rule]
) -> tuple[list[Finding], dict[int, set[str]]]:
    """Run per-file rules; returns (kept findings, silenced-by-line)."""
    findings: list[Finding] = []
    silenced_by_line: dict[int, set[str]] = {}
    for rule in rules:
        if rule.project_rule:
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding):
                silenced_by_line.setdefault(finding.line, set()).add(
                    finding.rule_id
                )
            else:
                findings.append(finding)
    return findings, silenced_by_line


def _needs_project(rules: Sequence[Rule]) -> bool:
    return any(rule.needs_project or rule.project_rule for rule in rules)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule] | None = None,
    module: str = "",
    audit_noqa: bool | None = None,
) -> list[Finding]:
    """Lint a source string; returns unsuppressed findings sorted by position.

    A single-file project analysis is built when any selected rule
    consumes the call graph, so same-module transitive summaries (and
    the project rules SSTD012+) work in standalone runs too; anything
    imported from *other* modules stays unresolved — whole-program
    resolution needs :func:`lint_paths`.

    ``audit_noqa`` adds the stale-suppression audit (SSTD000).  The
    default (``None``) enables it exactly when the full registered rule
    set runs.  Stale-suppression findings bypass ``noqa`` handling: a
    suppression cannot vouch for itself.
    """
    if rules is None:
        rules = all_rules()
    audit = _audit_flag(rules, audit_noqa)
    ctx = FileContext.from_source(source, path=path, module=module)
    if _needs_project(rules):
        from repro.devtools.lint.callgraph import build_project_for_context

        build_project_for_context(ctx)  # attaches itself as ctx.project
    findings, silenced_by_line = _check_file(ctx, rules)
    for rule in rules:
        if not rule.project_rule or ctx.project is None:
            continue
        for finding in rule.check_project(ctx.project):
            if ctx.is_suppressed(finding):
                silenced_by_line.setdefault(finding.line, set()).add(
                    finding.rule_id
                )
            else:
                findings.append(finding)
    if audit:
        findings.extend(stale_noqa_findings(source, path, silenced_by_line))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_file(
    path: Path,
    rules: Sequence[Rule] | None = None,
    audit_noqa: bool | None = None,
) -> list[Finding]:
    """Lint one file.  Syntax errors surface as an SSTD000 finding."""
    try:
        source = path.read_text(encoding="utf-8")
        return lint_source(
            source, path=str(path), rules=rules, audit_noqa=audit_noqa
        )
    except SyntaxError as exc:
        return [_syntax_finding(str(path), exc)]


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule_id="SSTD000",
        message=f"syntax error: {exc.msg}",
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint."""
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = set(sub.parts)
                if parts & _SKIP_DIR_NAMES:
                    continue
                if any(part.endswith(".egg-info") for part in sub.parts):
                    continue
                yield sub
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Iterable[Path],
    rules: Sequence[Rule] | None = None,
    audit_noqa: bool | None = None,
    cache: "object | None" = None,
    *,
    changed_only: Iterable[Path] | None = None,
    stats: dict | None = None,
) -> list[Finding]:
    """Lint every python file under ``paths`` as one project.

    The project summary layer is built over the *entire* file set
    first (cheap when the summary cache is warm); per-file rules then
    run — or are served from ``cache`` when neither the file nor its
    dependency closure changed — and the project rules (lock-order
    graph, SSTD012) run last over the global analysis.

    ``changed_only`` restricts the per-file rule phase (and the
    reported findings) to the given files *plus their call-graph
    dependents*; the project is still built over everything so
    resolution stays whole-program.

    ``cache``, when given, is a :class:`repro.devtools.lint.cache.LintCache`.
    ``stats``, when given, is filled with cache hit counters.
    """
    if rules is None:
        rules = all_rules()
    audit = _audit_flag(rules, audit_noqa)
    rule_ids = tuple(sorted(rule.rule_id for rule in rules))
    project_rules = [rule for rule in rules if rule.project_rule]
    findings: list[Finding] = []
    entries: list[tuple[Path, str]] = []
    sources: dict[str, str] = {}
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding(
                    rule_id="SSTD000",
                    message=f"unreadable file: {exc}",
                    path=str(file_path),
                    line=1,
                    col=0,
                )
            )
            continue
        entries.append((file_path, source))
        sources[str(file_path)] = source

    project = None
    if _needs_project(rules):
        from repro.devtools.lint.callgraph import build_project

        project = build_project(entries, cache=cache)

    scoped: set[str] | None = None
    if changed_only is not None:
        changed_paths = {str(p) for p in changed_only}
        scoped = changed_paths & set(sources)
        if project is not None:
            changed_modules = {
                module_name_for(Path(p)) for p in changed_paths
            }
            keep = project.dependents_of(
                changed_modules & set(project.modules)
            )
            scoped |= {
                project.modules[mod].path
                for mod in keep
                if project.has_module(mod)
            }

    per_file_silenced: dict[str, dict[int, set[str]]] = {}
    per_file_noqa: dict[str, dict[int, tuple[frozenset[str] | None, int]]] = {}
    checked: list[str] = []
    for file_path, source in entries:
        spath = str(file_path)
        if scoped is not None and spath not in scoped:
            continue
        module = module_name_for(file_path)
        in_project = project is not None and project.has_module(module)
        dep_digest = project.dep_digest(module) if in_project else ""
        if cache is not None:
            entry = cache.get(
                file_path,
                rule_ids,
                audit,
                dep_digest=dep_digest,
                with_meta=True,
            )
            if entry is not None:
                findings.extend(entry.findings)
                per_file_silenced[spath] = entry.silenced
                per_file_noqa[spath] = entry.noqa
                checked.append(spath)
                continue
        try:
            if in_project:
                ctx = project.context(module)
            else:
                ctx = FileContext.from_source(
                    source, path=spath, module=module
                )
                ctx.project = project
        except SyntaxError as exc:
            findings.append(_syntax_finding(spath, exc))
            continue
        file_findings, silenced = _check_file(ctx, rules)
        noqa = _noqa_comments(source)
        if cache is not None:
            cache.put(
                file_path,
                rule_ids,
                audit,
                file_findings,
                silenced=silenced,
                noqa=noqa,
                dep_digest=dep_digest,
            )
        findings.extend(file_findings)
        per_file_silenced[spath] = silenced
        per_file_noqa[spath] = noqa
        checked.append(spath)

    # Project rules run over the global analysis on every invocation —
    # their findings depend on the whole file set, so caching them per
    # file would go stale silently.
    if project is not None:
        for rule in project_rules:
            for finding in rule.check_project(project):
                if scoped is not None and finding.path not in scoped:
                    continue
                source = sources.get(finding.path, "")
                lines = source.splitlines()
                line_text = (
                    lines[finding.line - 1]
                    if 1 <= finding.line <= len(lines)
                    else ""
                )
                if _line_suppresses(line_text, finding.rule_id):
                    per_file_silenced.setdefault(
                        finding.path, {}
                    ).setdefault(finding.line, set()).add(finding.rule_id)
                else:
                    findings.append(finding)

    if audit:
        for spath in checked:
            comments = per_file_noqa.get(spath)
            if comments is None:
                comments = _noqa_comments(sources[spath])
            findings.extend(
                _stale_from_comments(
                    comments, spath, per_file_silenced.get(spath, {})
                )
            )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    if stats is not None:
        stats["files_seen"] = len(entries)
        stats["files_checked"] = len(checked)
        if cache is not None:
            stats["findings_hits"] = cache.hits
            stats["findings_misses"] = cache.misses
            stats["summary_hits"] = getattr(cache, "summary_hits", 0)
            stats["summary_misses"] = getattr(cache, "summary_misses", 0)
    return findings
