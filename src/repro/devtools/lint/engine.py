"""Core of the SSTD lint engine: contexts, rules, registry, runner.

The engine is deliberately small — a file is parsed once into an
:class:`ast` tree, each registered :class:`Rule` walks it and yields
:class:`Finding` records, and ``# noqa: SSTD###`` comments on the
flagged physical line suppress findings the author has justified.

Adding a rule:

>>> @register
... class MyRule(Rule):
...     rule_id = "SSTD042"
...     summary = "what the rule enforces"
...     def check(self, ctx):
...         for node in ast.walk(ctx.tree):
...             ...
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "FileContext",
    "Finding",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "register",
]

_NOQA_RE = re.compile(
    r"#\s*noqa(?P<codes>:\s*[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)?",
    re.IGNORECASE,
)

_SKIP_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".pytest_cache", "build", "dist"}
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint finding, anchored to a source position."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass(slots=True)
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    module: str = ""

    @classmethod
    def from_source(cls, source: str, path: str, module: str = "") -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            module=module or module_name_for(Path(path)),
        )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        """``# noqa`` on the flagged line silences the finding.

        A bare ``# noqa`` silences every rule; ``# noqa: SSTD003`` (or a
        comma-separated list) silences only the named rules.
        """
        match = _NOQA_RE.search(self.line_text(finding.line))
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True
        listed = {c.strip().upper() for c in codes.lstrip(":").split(",")}
        return finding.rule_id.upper() in listed


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, anchored at the ``repro`` package.

    ``src/repro/hmm/base.py`` -> ``repro.hmm.base``; package
    ``__init__.py`` files map to the package itself.  Files outside a
    ``repro`` tree fall back to their stem so synthetic fixtures still
    get a usable name.
    """
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    return ".".join(parts)


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` (``SSTD###``) and ``summary`` and
    implement :meth:`check`, yielding findings; helpers
    :meth:`finding` keeps positions consistent.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


#: Registry of rule classes keyed by rule id, filled by :func:`register`.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} must set rule_id")
    if rule_cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    RULE_REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate registered rules, optionally restricted to ``select``."""
    # Importing the rules package populates the registry on first use.
    from repro.devtools.lint import rules as _rules  # noqa: F401

    if select is None:
        ids = sorted(RULE_REGISTRY)
    else:
        ids = []
        for rule_id in select:
            normalized = rule_id.strip().upper()
            if normalized not in RULE_REGISTRY:
                known = ", ".join(sorted(RULE_REGISTRY))
                raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
            ids.append(normalized)
    return [RULE_REGISTRY[rule_id]() for rule_id in ids]


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule] | None = None,
    module: str = "",
) -> list[Finding]:
    """Lint a source string; returns unsuppressed findings sorted by position."""
    if rules is None:
        rules = all_rules()
    ctx = FileContext.from_source(source, path=path, module=module)
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_file(path: Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint one file.  Syntax errors surface as an SSTD000 finding."""
    try:
        source = path.read_text(encoding="utf-8")
        return lint_source(source, path=str(path), rules=rules)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="SSTD000",
                message=f"syntax error: {exc.msg}",
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint."""
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = set(sub.parts)
                if parts & _SKIP_DIR_NAMES:
                    continue
                if any(part.endswith(".egg-info") for part in sub.parts):
                    continue
                yield sub
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Iterable[Path], rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint every python file under ``paths``."""
    if rules is None:
        rules = all_rules()
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, rules=rules))
    return findings
