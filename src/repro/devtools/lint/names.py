"""Name-resolution helpers shared by the engine, flow analysis, and rules.

Lives at the package level (not under ``rules/``) so that
:mod:`repro.devtools.lint.flow` can use it without importing the rules
package — rule modules import ``flow``, and a ``rules/``-level home for
these helpers would make that a cycle.
"""

from __future__ import annotations

import ast

__all__ = ["ImportMap", "dotted_name"]


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Resolves local names to canonical module paths for one file.

    Tracks ``import numpy as np`` (``np`` -> ``numpy``), ``import
    numpy.random as nr`` (``nr`` -> ``numpy.random``), and ``from X
    import y as z`` (``z`` -> ``X.y``), so rules can match usage sites
    regardless of aliasing.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds c->a.b
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, expr: ast.expr) -> str | None:
        """Canonical dotted path of a Name/Attribute chain, if importable.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``numpy.random.rand``; unknown roots resolve to the literal
        dotted name so callers can still pattern-match.
        """
        name = dotted_name(expr)
        if name is None:
            return None
        root, _, rest = name.partition(".")
        canonical_root = self.aliases.get(root, root)
        return f"{canonical_root}.{rest}" if rest else canonical_root
