"""Project-specific AST lint engine (the ``SSTD###`` rules).

Public surface: the engine primitives (:class:`Rule`,
:class:`Finding`, :func:`lint_source`, :func:`lint_paths`) and the CLI
(:func:`repro.devtools.lint.cli.main`, also exposed as ``python -m
repro.devtools.lint`` and ``repro-cli lint``).  The rules themselves
live in :mod:`repro.devtools.lint.rules`; importing them registers
each rule with :data:`RULE_REGISTRY`.
"""

from repro.devtools.lint.engine import (
    RULE_REGISTRY,
    FileContext,
    Finding,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    register,
)

__all__ = [
    "FileContext",
    "Finding",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
]
