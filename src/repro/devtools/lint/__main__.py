"""``python -m repro.devtools.lint`` dispatches to the lint CLI."""

from repro.devtools.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
