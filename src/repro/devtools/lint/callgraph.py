"""Project-wide call graph and bottom-up function summaries.

PR 3's flow walker (:mod:`repro.devtools.lint.flow`) is deliberately
intraprocedural: one class at a time, one level of ``self.<helper>()``.
That misses exactly the hazards the paper's master/worker runtime
grows into — a blocking call reached through a module-level helper or
a cross-class handoff (``workqueue.process`` → ``obs.metrics``), and
any question about the *order* in which locks across classes are
acquired.  This module closes the gap in three stages:

1. **Per-module summaries** (:class:`ModuleInfo`).  Each file is
   reduced to a serializable record: every function/method with its
   calls (canonicalized against the file's imports but *unresolved* —
   no other module's content is consulted, so the record is cacheable
   by content hash alone), its lock acquisitions with the lockset held
   at each site, its declared ``# holds-lock:`` entry locks, whether
   it contains a *leaf* blocking call, plus per-class metadata (bases,
   methods, lock attributes and their reentrancy, class-valued
   attributes) and ``# lock-order:`` declarations.

2. **Global resolution** (:class:`ProjectAnalysis`).  Call references
   are resolved across modules: re-exports are followed through
   package ``__init__`` import maps, ``Class.method`` and constructor
   calls land on the defining class (searching bases), classmethod
   factories (``Observability.from_env()``) resolve to the class they
   build, and attribute chains (``self.obs.metrics.inc``) walk the
   class-valued attribute tables.  The modules touched while resolving
   a file's references become its *dependency closure*, whose digest
   keys the findings cache — editing a callee invalidates its callers.

3. **Bottom-up fixpoints.**  May-block (with the call chain to the
   blocking leaf), transitive lock acquisitions (with the acquisition
   site and chain), the global lock-acquisition-order edge set
   ``(held, acquired)`` that SSTD012 runs cycle detection over, and —
   fourth, since PR 8 — per-function *exception-escape* summaries:
   which exception classes can propagate out of each function, seeded
   from :func:`repro.devtools.lint.flow.analyze_exceptions` raise
   sites and propagated caller-ward through resolved call sites minus
   whatever each site's enclosing handlers catch (every call site is
   stamped with its caught-class context).  SSTD015 checks these
   against ``# raises:`` contracts; the summaries are cached exactly
   like the may-block ones.

Known false-negative limits (see DESIGN.md): dynamic dispatch through
untyped values, callables stored in containers, monkey-patching, and
locks reached through chains the attribute tables cannot type are all
invisible; the analysis is deliberately unsound-but-useful, tuned to
the annotation discipline this repo already enforces.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Optional

from repro.devtools.lint.engine import FileContext, module_name_for
from repro.devtools.lint.flow import (
    LOCK_ORDER_RE,
    ClassFlow,
    MethodFlow,
    analyze_class,
    analyze_exceptions,
    analyze_function,
    blocking_reason,
    exception_caught,
)
from repro.devtools.lint.names import ImportMap, dotted_name

__all__ = [
    "BlockSummary",
    "CallRef",
    "ClassInfo",
    "EscapeInfo",
    "FunctionNode",
    "LockEdge",
    "ModuleInfo",
    "ProjectAnalysis",
    "ResolvedCall",
    "build_module_info",
    "build_project",
    "build_project_for_context",
    "content_hash",
    "match_lock",
]

#: Bump when the :class:`ModuleInfo` payload layout changes (the cache
#: key also covers the lint package's own sources, so this is belt and
#: braces for out-of-tree cache directories).  2: per-call caught-class
#: context, per-function raise sites and returned-call refs.
SUMMARY_FORMAT = 2

_FOLLOW_LIMIT = 16  # re-export chains are short; bound the walk anyway


def match_lock(pattern: str, lock: str) -> bool:
    """True when a ``# lock-order:`` side names ``lock``.

    Locks are global ids (``repro.workqueue.process.ProcessWorkQueue.
    _lock``); a pattern matches on equality or as a dotted suffix, so
    annotations can say ``ProcessWorkQueue._lock`` or just ``_lock``.
    """
    return lock == pattern or lock.endswith("." + pattern)


# ---------------------------------------------------------------------------
# Serializable per-module summaries
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CallRef:
    """One call site, canonicalized but not yet resolved.

    ``ref`` grammar:

    - ``path:<dotted>`` — a plain or imported name (module function,
      class constructor, ``Class.method``); resolution follows
      re-exports.
    - ``attr:<class path>.<attr chain>.<meth>`` — a method call on a
      typed receiver (``self.<helper>``, ``self.obs.metrics.inc``, a
      local/parameter of a known class).
    """

    ref: str
    held: tuple[str, ...]
    line: int
    col: int
    #: Exception names the handlers enclosing this call site would
    #: catch (``"*"`` = everything); the escape fixpoint subtracts
    #: these from the callee's escape set before propagating.
    caught: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class FunctionNode:
    """Summary of one function or method body."""

    qualname: str
    cls: Optional[str]
    name: str
    line: int
    col: int
    entry_locks: tuple[str, ...]
    #: (reason, line, col) of the first *leaf* blocking call, if any.
    block: Optional[tuple[str, int, int]]
    calls: tuple[CallRef, ...]
    #: (lock, held-before, line, col) per acquisition site.
    acquisitions: tuple[tuple[str, tuple[str, ...], int, int], ...]
    #: (exception name, line, col) per direct *escaping* raise site.
    raises: tuple[tuple[str, int, int], ...] = ()
    #: Canonical refs of calls whose result this function may return
    #: (``return f(...)`` or ``x = f(...) ... return x``); the resource
    #: rules chase these to find acquire-wrappers like ``_make_executor``.
    returned_refs: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class ClassInfo:
    """Metadata the resolver needs about one class."""

    name: str
    module: str
    bases: tuple[str, ...]
    methods: tuple[str, ...]
    #: attr -> canonical class path (``obs`` -> ``repro.obs.Observability``).
    attr_classes: Mapping[str, str]
    #: lock attr -> reentrant (True = RLock, False = Lock, None = unknown).
    locks: Mapping[str, Optional[bool]]


@dataclass(slots=True)
class ModuleInfo:
    """Everything the project layer keeps about one module.

    Built from a parsed file — or deserialized from the summary cache
    without parsing at all.  Contains no resolved cross-module facts,
    so a content hash of the file (plus the lint package fingerprint)
    fully keys it.
    """

    module: str
    path: str
    content_hash: str
    imports: dict[str, str]
    functions: list[FunctionNode]
    classes: dict[str, ClassInfo]
    lock_decls: tuple[tuple[str, str, int], ...]

    def to_payload(self) -> dict:
        return {
            "format": SUMMARY_FORMAT,
            "module": self.module,
            "path": self.path,
            "content_hash": self.content_hash,
            "imports": self.imports,
            "functions": [
                {
                    "qualname": f.qualname,
                    "cls": f.cls,
                    "name": f.name,
                    "line": f.line,
                    "col": f.col,
                    "entry_locks": list(f.entry_locks),
                    "block": list(f.block) if f.block else None,
                    "calls": [
                        [c.ref, list(c.held), c.line, c.col, list(c.caught)]
                        for c in f.calls
                    ],
                    "acquisitions": [
                        [a[0], list(a[1]), a[2], a[3]]
                        for a in f.acquisitions
                    ],
                    "raises": [list(r) for r in f.raises],
                    "returned_refs": list(f.returned_refs),
                }
                for f in self.functions
            ],
            "classes": {
                name: {
                    "module": c.module,
                    "bases": list(c.bases),
                    "methods": list(c.methods),
                    "attr_classes": dict(c.attr_classes),
                    "locks": dict(c.locks),
                }
                for name, c in self.classes.items()
            },
            "lock_decls": [list(d) for d in self.lock_decls],
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ModuleInfo":
        if payload.get("format") != SUMMARY_FORMAT:
            raise ValueError("summary format mismatch")
        return cls(
            module=str(payload["module"]),
            path=str(payload["path"]),
            content_hash=str(payload["content_hash"]),
            imports={str(k): str(v) for k, v in payload["imports"].items()},
            functions=[
                FunctionNode(
                    qualname=str(f["qualname"]),
                    cls=f["cls"],
                    name=str(f["name"]),
                    line=int(f["line"]),
                    col=int(f["col"]),
                    entry_locks=tuple(f["entry_locks"]),
                    block=tuple(f["block"]) if f["block"] else None,
                    calls=tuple(
                        CallRef(
                            ref=str(c[0]),
                            held=tuple(c[1]),
                            line=int(c[2]),
                            col=int(c[3]),
                            caught=tuple(c[4]) if len(c) > 4 else (),
                        )
                        for c in f["calls"]
                    ),
                    acquisitions=tuple(
                        (str(a[0]), tuple(a[1]), int(a[2]), int(a[3]))
                        for a in f["acquisitions"]
                    ),
                    raises=tuple(
                        (str(r[0]), int(r[1]), int(r[2]))
                        for r in f.get("raises", ())
                    ),
                    returned_refs=tuple(f.get("returned_refs", ())),
                )
                for f in payload["functions"]
            ],
            classes={
                str(name): ClassInfo(
                    name=str(name),
                    module=str(c["module"]),
                    bases=tuple(c["bases"]),
                    methods=tuple(c["methods"]),
                    attr_classes=dict(c["attr_classes"]),
                    locks={
                        str(k): (None if v is None else bool(v))
                        for k, v in c["locks"].items()
                    },
                )
                for name, c in payload["classes"].items()
            },
            lock_decls=tuple(
                (str(a), str(b), int(line))
                for a, b, line in payload["lock_decls"]
            ),
        )


# ---------------------------------------------------------------------------
# Per-module summary construction
# ---------------------------------------------------------------------------


def _class_effects_fixpoint(
    ctx: FileContext, cls: ast.ClassDef
) -> ClassFlow:
    """Analyze a class, iterating same-class helper lock effects.

    ``self._take()`` / ``self._give()`` helpers change the lockset at
    their call sites; one ``analyze_class`` pass computes each method's
    net effects, the next applies them, until stable (bounded — the
    lattice of (acquired, released) pairs over a class's few locks is
    tiny).
    """
    effects: dict[str, tuple[frozenset[str], frozenset[str]]] = {}
    flow = analyze_class(ctx, cls)
    for _ in range(4):
        new: dict[str, tuple[frozenset[str], frozenset[str]]] = {}
        for name, method in flow.methods.items():
            acquired = method.exit_locks - method.entry_locks
            released = method.entry_locks - method.exit_locks
            if acquired or released:
                new[name] = (acquired, released)
        if new == effects:
            break
        effects = new
        flow = analyze_class(ctx, cls, helper_effects=effects)
    return flow


class _RefBuilder:
    """Canonicalizes call references against one module's namespace."""

    def __init__(
        self,
        module: str,
        imports: dict[str, str],
        class_names: frozenset[str],
        func_names: frozenset[str],
    ) -> None:
        self.module = module
        self.imports = imports
        self.class_names = class_names
        self.func_names = func_names

    def canon(self, text: str) -> str:
        """Qualify a raw dotted class text against this module."""
        root, _, rest = text.partition(".")
        if root in self.class_names:
            return f"{self.module}.{text}"
        target = self.imports.get(root)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        return text

    def ref_for(
        self,
        callee: Optional[str],
        cls_name: Optional[str],
        attr_classes: Mapping[str, str],
        method: MethodFlow,
    ) -> Optional[str]:
        if not callee:
            return None
        root, _, rest = callee.partition(".")
        if root == "self":
            if not rest:
                return None
            first, _, chain = rest.partition(".")
            if not chain:
                if cls_name is None:
                    return None
                return f"attr:{self.module}.{cls_name}.{first}"
            base = attr_classes.get(first)
            if base is None:
                return None
            return f"attr:{self.canon(base)}.{chain}"
        local = method.local_classes.get(root) or method.params.get(root)
        if local is not None:
            if not rest:
                return None  # bare ``instance()`` — __call__, out of scope
            return f"attr:{self.canon(local)}.{rest}"
        if not rest:
            if root in self.func_names or root in self.class_names:
                return f"path:{self.module}.{root}"
            target = self.imports.get(root)
            return f"path:{target}" if target else None
        if root in self.class_names:
            return f"path:{self.module}.{callee}"
        target = self.imports.get(root)
        return f"path:{target}.{rest}" if target else None


def build_module_info(
    ctx: FileContext,
    content_hash: str,
    flows: Optional[dict[str, ClassFlow]] = None,
) -> ModuleInfo:
    """Reduce one parsed file to its serializable summary.

    ``flows``, when given, is filled with the (effects-aware) per-class
    flows computed along the way so callers can reuse them instead of
    re-walking.
    """
    imports = ImportMap(ctx.tree)
    top_classes = [
        node for node in ctx.tree.body if isinstance(node, ast.ClassDef)
    ]
    top_funcs = [
        node
        for node in ctx.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    refs = _RefBuilder(
        module=ctx.module,
        imports=imports.aliases,
        class_names=frozenset(c.name for c in top_classes),
        func_names=frozenset(f.name for f in top_funcs),
    )

    functions: list[FunctionNode] = []
    classes: dict[str, ClassInfo] = {}

    def globalize(cls_name: str, locks: Iterable[str]) -> tuple[str, ...]:
        return tuple(
            sorted(f"{ctx.module}.{cls_name}.{lock}" for lock in locks)
        )

    def node_for(
        method: MethodFlow,
        cls_name: Optional[str],
        attr_classes: Mapping[str, str],
        model,
    ) -> FunctionNode:
        qual = (
            f"{ctx.module}.{cls_name}.{method.name}"
            if cls_name
            else f"{ctx.module}.{method.name}"
        )
        exc_flow = analyze_exceptions(method.node, imports)
        block: Optional[tuple[str, int, int]] = None
        calls: list[CallRef] = []
        for event in method.calls:
            if block is None:
                reason = blocking_reason(event, model, method, imports)
                if reason is not None:
                    # The flow-layer phrasing ends with a splice comma
                    # ("... blocks until exit,"); summaries store the
                    # clause standalone.
                    block = (
                        reason.rstrip(","),
                        event.node.lineno,
                        event.node.col_offset,
                    )
            ref = refs.ref_for(event.callee, cls_name, attr_classes, method)
            if ref is not None:
                held = (
                    globalize(cls_name, event.held)
                    if cls_name
                    else tuple(sorted(event.held))
                )
                calls.append(
                    CallRef(
                        ref=ref,
                        held=held,
                        line=event.node.lineno,
                        col=event.node.col_offset,
                        caught=exc_flow.caught_at.get(id(event.node), ()),
                    )
                )
        acquisitions = tuple(
            (
                f"{ctx.module}.{cls_name}.{acq.lock}"
                if cls_name
                else acq.lock,
                globalize(cls_name, acq.held)
                if cls_name
                else tuple(sorted(acq.held)),
                acq.node.lineno,
                acq.node.col_offset,
            )
            for acq in method.acquires
        )
        entry = (
            globalize(cls_name, method.entry_locks) if cls_name else ()
        )
        return FunctionNode(
            qualname=qual,
            cls=cls_name,
            name=method.name,
            line=method.node.lineno,
            col=method.node.col_offset,
            entry_locks=entry,
            block=block,
            calls=tuple(calls),
            acquisitions=acquisitions,
            raises=tuple(
                (site.name, site.line, site.col) for site in exc_flow.raises
            ),
            returned_refs=_returned_refs(
                method, cls_name, attr_classes, refs
            ),
        )

    for cls in top_classes:
        flow = _class_effects_fixpoint(ctx, cls)
        if flows is not None:
            flows[cls.name] = flow
        model = flow.model
        attr_classes = {
            attr: refs.canon(text)
            for attr, text in model.attr_classes.items()
        }
        locks: dict[str, Optional[bool]] = {}
        for lock in model.lock_names():
            info = model.attrs.get(lock)
            locks[lock] = (
                info.reentrant
                if info is not None and info.kind == "lock"
                else None
            )
        classes[cls.name] = ClassInfo(
            name=cls.name,
            module=ctx.module,
            bases=tuple(
                refs.canon(text)
                for text in (
                    _base_text(base) for base in cls.bases
                )
                if text is not None
            ),
            methods=tuple(flow.methods),
            attr_classes=attr_classes,
            locks=locks,
        )
        for method in flow.methods.values():
            functions.append(
                node_for(method, cls.name, model.attr_classes, model)
            )

    for func in top_funcs:
        method = analyze_function(ctx, func)
        functions.append(node_for(method, None, {}, None))

    decls: list[tuple[str, str, int]] = []
    for lineno, line in enumerate(ctx.lines, start=1):
        for match in LOCK_ORDER_RE.finditer(line):
            decls.append((match.group(1), match.group(2), lineno))

    return ModuleInfo(
        module=ctx.module,
        path=ctx.path,
        content_hash=content_hash,
        imports=dict(imports.aliases),
        functions=functions,
        classes=classes,
        lock_decls=tuple(decls),
    )


def _base_text(base: ast.expr) -> Optional[str]:
    return dotted_name(base)


def _returned_refs(
    method: MethodFlow,
    cls_name: Optional[str],
    attr_classes: Mapping[str, str],
    refs: _RefBuilder,
) -> tuple[str, ...]:
    """Canonical refs of calls whose result the function may return.

    Covers ``return f(...)`` directly and the two-step
    ``x = f(...) ... return x`` (last assignment wins — branches are
    not path-sensitive here; over-approximating the returned set only
    makes *more* functions count as resource constructors, which is
    the safe direction for leak tracking).  Nested ``def`` bodies are
    skipped: their returns are not this function's returns.
    """
    assigned: dict[str, str] = {}
    out: list[str] = []

    def ref_of(call: ast.Call) -> Optional[str]:
        return refs.ref_for(
            dotted_name(call.func), cls_name, attr_classes, method
        )

    def scan(stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.Assign):
                ref = (
                    ref_of(stmt.value)
                    if isinstance(stmt.value, ast.Call)
                    else None
                )
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if ref is not None:
                            assigned[target.id] = ref
                        else:
                            assigned.pop(target.id, None)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                value = stmt.value
                ref = None
                if isinstance(value, ast.Call):
                    ref = ref_of(value)
                elif isinstance(value, ast.Name):
                    ref = assigned.get(value.id)
                if ref is not None and ref not in out:
                    out.append(ref)
            for name in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, name, None)
                if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                    scan(sub)
            for handler in getattr(stmt, "handlers", ()) or ():
                scan(handler.body)

    scan(method.node.body)
    return tuple(out)


# ---------------------------------------------------------------------------
# Global resolution and fixpoints
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BlockSummary:
    """Why (and where, and through whom) a function may block."""

    reason: str
    chain: tuple[str, ...]
    path: str
    line: int
    col: int

    def describe(self) -> str:
        if len(self.chain) <= 1:
            return self.reason
        return f"{self.reason} via {' -> '.join(self.chain)}"


@dataclass(frozen=True, slots=True)
class EscapeInfo:
    """One exception class that can propagate out of a function.

    ``chain`` walks caller-ward from the function whose summary holds
    this entry down to the function containing the raise; ``path``/
    ``line``/``col`` locate the raise statement itself.
    """

    name: str
    chain: tuple[str, ...]
    path: str
    line: int
    col: int

    def describe(self) -> str:
        short = self.name.rsplit(".", 1)[-1]
        if len(self.chain) <= 1:
            return f"{short} raised at {self.path}:{self.line}"
        via = " -> ".join(q.rsplit(".", 1)[-1] for q in self.chain)
        return f"{short} raised at {self.path}:{self.line} via {via}"


@dataclass(frozen=True, slots=True)
class LockEdge:
    """``to`` acquired while ``frm`` held, with provenance."""

    frm: str
    to: str
    path: str
    line: int
    col: int
    chain: tuple[str, ...]


@dataclass(slots=True)
class ResolvedCall:
    """A call site with its resolved target qualnames (for rules)."""

    caller: str
    targets: tuple[str, ...]
    held: tuple[str, ...]
    line: int
    col: int


class ProjectAnalysis:
    """Resolved call graph plus bottom-up summaries for a file set."""

    def __init__(
        self,
        modules: dict[str, ModuleInfo],
        sources: Mapping[str, tuple[str, str]],
    ) -> None:
        #: module -> ModuleInfo
        self.modules = modules
        #: module -> (path, source); feeds lazy FileContext creation.
        self._sources = dict(sources)
        self._contexts: dict[str, FileContext] = {}
        self._flows: dict[str, list[ClassFlow]] = {}
        #: ``module.Class`` -> ClassInfo
        self.class_index: dict[str, ClassInfo] = {}
        #: qualname -> (module, FunctionNode)
        self.functions: dict[str, tuple[str, FunctionNode]] = {}
        self._func_names: dict[str, frozenset[str]] = {}
        for module, info in modules.items():
            names = set()
            for fn in info.functions:
                self.functions[fn.qualname] = (module, fn)
                if fn.cls is None:
                    names.add(fn.name)
            self._func_names[module] = frozenset(names)
            for name, cls in info.classes.items():
                self.class_index[f"{module}.{name}"] = cls
        #: module -> modules consulted while resolving its references.
        self.deps: dict[str, set[str]] = {m: {m} for m in modules}
        #: module -> resolved call sites (for the rules).
        self._module_calls: dict[str, list[ResolvedCall]] = {
            m: [] for m in modules
        }
        #: qualname -> declared entry locks (``# holds-lock:``).
        self.entry_locks: dict[str, frozenset[str]] = {
            q: frozenset(fn.entry_locks)
            for q, (_, fn) in self.functions.items()
        }
        self._resolved: dict[str, list[tuple[CallRef, tuple[str, ...]]]] = {}
        self._resolve_all()
        self.blocking: dict[str, BlockSummary] = {}
        self._blocking_fixpoint()
        #: qualname -> lock -> (path, line, col, chain) transitive.
        self.acquired: dict[
            str, dict[str, tuple[str, int, int, tuple[str, ...]]]
        ] = {}
        self._acquire_fixpoint()
        self.lock_edges: dict[tuple[str, str], LockEdge] = {}
        self._build_lock_edges()
        #: qualname -> exception name -> EscapeInfo (fourth fixpoint).
        self.escapes: dict[str, dict[str, EscapeInfo]] = {}
        self._escape_fixpoint()
        #: qualname -> ((canonical ref, resolved targets), ...) for
        #: calls whose result the function may return.  Resolved here —
        #: not lazily at rule time — so the modules consulted land in
        #: ``deps`` before findings-cache digests are taken.
        self.returned: dict[
            str, tuple[tuple[str, tuple[str, ...]], ...]
        ] = {}
        self._resolve_returned()
        #: (A, B, path, line) per ``# lock-order: A < B`` declaration.
        self.lock_decls: list[tuple[str, str, str, int]] = sorted(
            (a, b, info.path, line)
            for info in modules.values()
            for (a, b, line) in info.lock_decls
        )
        self._digests: dict[str, str] = {}

    # -- module access ---------------------------------------------------
    def has_module(self, module: str) -> bool:
        return module in self.modules

    def context(self, module: str) -> FileContext:
        """Parse (memoized) the module's source, project attached."""
        ctx = self._contexts.get(module)
        if ctx is None:
            path, source = self._sources[module]
            ctx = FileContext.from_source(source, path=path, module=module)
            ctx.project = self
            self._contexts[module] = ctx
        return ctx

    def adopt_context(self, ctx: FileContext) -> None:
        """Reuse an already-parsed context (build-time parses)."""
        ctx.project = self
        self._contexts.setdefault(ctx.module, ctx)

    def adopt_flows(self, module: str, flows: dict[str, ClassFlow]) -> None:
        """Seed the flow memo with build-time per-class flows.

        Only top-level classes are built eagerly; nested classes are
        filled in lazily by :meth:`class_flows`.
        """
        self._build_flows = getattr(self, "_build_flows", {})
        self._build_flows[module] = flows

    def class_flows(self, module: str) -> list[ClassFlow]:
        """Effects-aware flows for every class in the module (memoized)."""
        cached = self._flows.get(module)
        if cached is not None:
            return cached
        ctx = self.context(module)
        prebuilt = getattr(self, "_build_flows", {}).get(module, {})
        flows: list[ClassFlow] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            flow = prebuilt.get(node.name)
            if flow is None or flow.node is not node:
                flow = _class_effects_fixpoint(ctx, node)
            flows.append(flow)
        self._flows[module] = flows
        return flows

    def resolved_calls(self, module: str) -> list[ResolvedCall]:
        return self._module_calls.get(module, [])

    # -- name resolution -------------------------------------------------
    def _follow(self, path: str, deps: set[str]) -> str:
        """Follow ``from X import y`` re-export chains to a fixpoint."""
        for _ in range(_FOLLOW_LIMIT):
            mod, _, name = path.rpartition(".")
            if not name or mod not in self.modules:
                return path
            deps.add(mod)
            target = self.modules[mod].imports.get(name)
            if target is None or target == path:
                return path
            path = target
        return path

    def resolve_class(
        self, path: str, deps: set[str]
    ) -> Optional[ClassInfo]:
        path = self._follow(path, deps)
        cls = self.class_index.get(path)
        if cls is not None:
            deps.add(cls.module)
        return cls

    def _instance_class(
        self, path: str, deps: set[str]
    ) -> Optional[ClassInfo]:
        """Class an expression of canonical ``path`` evaluates to.

        Handles the classmethod-factory idiom: ``X.from_env`` resolves
        to ``X`` when ``from_env`` is one of ``X``'s methods.
        """
        cls = self.resolve_class(path, deps)
        if cls is not None:
            return cls
        prefix, _, last = path.rpartition(".")
        if not prefix:
            return None
        cls = self.resolve_class(prefix, deps)
        if cls is not None and self._find_method(cls, last, deps):
            return cls
        return None

    def _find_method(
        self, cls: ClassInfo, meth: str, deps: set[str], _depth: int = 0
    ) -> Optional[str]:
        """Qualname of ``meth`` on ``cls`` or its bases, else None."""
        if _depth > 8:
            return None
        if meth in cls.methods:
            return f"{cls.module}.{cls.name}.{meth}"
        for base in cls.bases:
            parent = self.resolve_class(base, deps)
            if parent is not None and parent is not cls:
                found = self._find_method(parent, meth, deps, _depth + 1)
                if found is not None:
                    return found
        return None

    def resolve_ref(self, ref: str, deps: set[str]) -> tuple[str, ...]:
        """Qualnames a canonical reference may land on (possibly none)."""
        kind, _, spec = ref.partition(":")
        if kind == "path":
            path = self._follow(spec, deps)
            mod, _, name = path.rpartition(".")
            if mod in self.modules and name in self._func_names[mod]:
                deps.add(mod)
                return (f"{mod}.{name}",)
            cls = self.class_index.get(path)
            if cls is not None:  # constructor call
                deps.add(cls.module)
                init = self._find_method(cls, "__init__", deps)
                return (init,) if init else ()
            prefix, _, meth = path.rpartition(".")
            if prefix:
                cls = self.resolve_class(prefix, deps)
                if cls is not None:  # Class.method / classmethod
                    found = self._find_method(cls, meth, deps)
                    return (found,) if found else ()
            return ()
        if kind == "attr":
            # <class path>.<attr chain>.<meth>; the class path itself
            # contains dots, so peel segments off the right.
            segments = spec.split(".")
            for split in range(len(segments) - 1, 0, -1):
                base = ".".join(segments[:split])
                cls = self._instance_class(base, deps)
                if cls is None:
                    continue
                chain = segments[split:]
                for attr in chain[:-1]:
                    nxt = cls.attr_classes.get(attr)
                    cls = (
                        self._instance_class(nxt, deps)
                        if nxt is not None
                        else None
                    )
                    if cls is None:
                        break
                if cls is None:
                    continue
                found = self._find_method(cls, chain[-1], deps)
                return (found,) if found else ()
            return ()
        return ()

    def _resolve_all(self) -> None:
        for module in sorted(self.modules):
            deps = self.deps[module]
            for fn in self.modules[module].functions:
                resolved: list[tuple[CallRef, tuple[str, ...]]] = []
                for call in fn.calls:
                    targets = self.resolve_ref(call.ref, deps)
                    resolved.append((call, targets))
                    self._module_calls[module].append(
                        ResolvedCall(
                            caller=fn.qualname,
                            targets=targets,
                            held=call.held,
                            line=call.line,
                            col=call.col,
                        )
                    )
                self._resolved[fn.qualname] = resolved

    # -- bottom-up fixpoints ---------------------------------------------
    def _blocking_fixpoint(self) -> None:
        for qual in sorted(self.functions):
            module, fn = self.functions[qual]
            if fn.block is not None:
                reason, line, col = fn.block
                self.blocking[qual] = BlockSummary(
                    reason=reason,
                    chain=(qual,),
                    path=self.modules[module].path,
                    line=line,
                    col=col,
                )
        changed = True
        while changed:
            changed = False
            for qual in sorted(self.functions):
                if qual in self.blocking:
                    continue
                for call, targets in self._resolved.get(qual, ()):
                    inner = next(
                        (
                            self.blocking[t]
                            for t in targets
                            if t in self.blocking
                        ),
                        None,
                    )
                    if inner is not None:
                        self.blocking[qual] = BlockSummary(
                            reason=inner.reason,
                            chain=(qual,) + inner.chain,
                            path=inner.path,
                            line=inner.line,
                            col=inner.col,
                        )
                        changed = True
                        break

    def _acquire_fixpoint(self) -> None:
        for qual in sorted(self.functions):
            module, fn = self.functions[qual]
            path = self.modules[module].path
            mine: dict[str, tuple[str, int, int, tuple[str, ...]]] = {}
            for lock, _held, line, col in fn.acquisitions:
                mine.setdefault(lock, (path, line, col, (qual,)))
            self.acquired[qual] = mine
        changed = True
        while changed:
            changed = False
            for qual in sorted(self.functions):
                mine = self.acquired[qual]
                for call, targets in self._resolved.get(qual, ()):
                    for target in targets:
                        for lock, (path, line, col, chain) in self.acquired.get(
                            target, {}
                        ).items():
                            if lock not in mine:
                                mine[lock] = (
                                    path,
                                    line,
                                    col,
                                    (qual,) + chain,
                                )
                                changed = True

    def _escape_fixpoint(self) -> None:
        """Fourth bottom-up pass: which exceptions escape each function.

        Seeded from each function's direct escaping raise sites;
        propagated caller-ward through resolved calls, minus whatever
        the call site's enclosing handlers catch.  Unresolved callees
        (stdlib, dynamic receivers) contribute nothing — a documented
        false-negative limit, same as the may-block fixpoint.
        """
        for qual in sorted(self.functions):
            module, fn = self.functions[qual]
            path = self.modules[module].path
            mine: dict[str, EscapeInfo] = {}
            for name, line, col in fn.raises:
                mine.setdefault(
                    name, EscapeInfo(name, (qual,), path, line, col)
                )
            self.escapes[qual] = mine
        changed = True
        while changed:
            changed = False
            for qual in sorted(self.functions):
                mine = self.escapes[qual]
                for call, targets in self._resolved.get(qual, ()):
                    frame = frozenset(call.caught)
                    for target in targets:
                        if target == qual:
                            continue
                        for name, info in self.escapes.get(
                            target, {}
                        ).items():
                            if name in mine:
                                continue
                            if frame and exception_caught(name, frame):
                                continue
                            mine[name] = EscapeInfo(
                                name=name,
                                chain=(qual,) + info.chain,
                                path=info.path,
                                line=info.line,
                                col=info.col,
                            )
                            changed = True

    def _resolve_returned(self) -> None:
        for module in sorted(self.modules):
            deps = self.deps[module]
            for fn in self.modules[module].functions:
                if not fn.returned_refs:
                    continue
                self.returned[fn.qualname] = tuple(
                    (ref, self.resolve_ref(ref, deps))
                    for ref in fn.returned_refs
                )

    def _build_lock_edges(self) -> None:
        def add(frm: str, to: str, edge: LockEdge) -> None:
            key = (frm, to)
            existing = self.lock_edges.get(key)
            if existing is None or len(edge.chain) < len(existing.chain):
                self.lock_edges[key] = edge

        for qual in sorted(self.functions):
            module, fn = self.functions[qual]
            path = self.modules[module].path
            for lock, held, line, col in fn.acquisitions:
                for holder in held:
                    add(
                        holder,
                        lock,
                        LockEdge(
                            frm=holder,
                            to=lock,
                            path=path,
                            line=line,
                            col=col,
                            chain=(qual,),
                        ),
                    )
            for call, targets in self._resolved.get(qual, ()):
                if not call.held:
                    continue
                for target in targets:
                    if target == qual:
                        continue
                    for lock, (
                        tpath,
                        tline,
                        tcol,
                        chain,
                    ) in self.acquired.get(target, {}).items():
                        for holder in call.held:
                            add(
                                holder,
                                lock,
                                LockEdge(
                                    frm=holder,
                                    to=lock,
                                    path=tpath,
                                    line=tline,
                                    col=tcol,
                                    chain=(qual,) + chain,
                                ),
                            )

    # -- lock metadata ---------------------------------------------------
    def lock_reentrant(self, lock: str) -> Optional[bool]:
        """True/False when the lock's constructor was seen, else None."""
        prefix, _, attr = lock.rpartition(".")
        cls = self.class_index.get(prefix)
        if cls is None:
            return None
        return cls.locks.get(attr)

    def sanctioned(self, frm: str, to: str) -> bool:
        """A ``# lock-order: A < B`` declaration covers this edge."""
        return any(
            match_lock(a, frm) and match_lock(b, to)
            for (a, b, _path, _line) in self.lock_decls
        )

    # -- cache keys ------------------------------------------------------
    def dep_digest(self, module: str) -> str:
        """Digest of the module's transitive dependency closure.

        Covers (module name, content hash) for every module whose
        content can influence this module's findings through the call
        graph — the findings cache mixes it into its key so editing a
        callee invalidates cached findings of its callers.
        """
        cached = self._digests.get(module)
        if cached is not None:
            return cached
        closure: set[str] = set()
        frontier = [module]
        while frontier:
            current = frontier.pop()
            if current in closure:
                continue
            closure.add(current)
            frontier.extend(self.deps.get(current, ()))
        digest = hashlib.sha256()
        for mod in sorted(closure & set(self.modules)):
            digest.update(mod.encode())
            digest.update(b"\0")
            digest.update(self.modules[mod].content_hash.encode())
            digest.update(b"\0")
        out = digest.hexdigest()
        self._digests[module] = out
        return out

    def dependents_of(self, changed: Iterable[str]) -> set[str]:
        """Modules whose analysis may change when ``changed`` change."""
        changed = set(changed)
        reverse: dict[str, set[str]] = {}
        for module, deps in self.deps.items():
            for dep in deps:
                reverse.setdefault(dep, set()).add(module)
        out: set[str] = set()
        frontier = list(changed)
        while frontier:
            current = frontier.pop()
            if current in out:
                continue
            out.add(current)
            frontier.extend(reverse.get(current, ()))
        return out


# ---------------------------------------------------------------------------
# Project construction
# ---------------------------------------------------------------------------


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def build_project(
    entries: Iterable[tuple[Path, str]],
    cache: "object | None" = None,
) -> ProjectAnalysis:
    """Build the project analysis for ``(path, source)`` pairs.

    Files that fail to parse are skipped (the engine reports their
    syntax error separately).  ``cache`` is duck-typed — anything with
    ``get_summary(path, key) -> payload | None`` and
    ``put_summary(path, key, payload)`` (see
    :class:`repro.devtools.lint.cache.LintCache`); on a summary hit the
    file is not parsed at all.
    """
    modules: dict[str, ModuleInfo] = {}
    sources: dict[str, tuple[str, str]] = {}
    contexts: list[FileContext] = []
    built_flows: dict[str, dict[str, ClassFlow]] = {}
    for path, source in entries:
        module = module_name_for(Path(path))
        digest = content_hash(source)
        info: Optional[ModuleInfo] = None
        if cache is not None:
            payload = cache.get_summary(path, digest)
            if payload is not None:
                try:
                    info = ModuleInfo.from_payload(payload)
                except (ValueError, KeyError, TypeError):
                    info = None
        if info is None or info.module != module:
            try:
                ctx = FileContext.from_source(
                    source, path=str(path), module=module
                )
            except SyntaxError:
                continue
            flows: dict[str, ClassFlow] = {}
            info = build_module_info(ctx, digest, flows=flows)
            built_flows[module] = flows
            contexts.append(ctx)
            if cache is not None:
                cache.put_summary(path, digest, info.to_payload())
        modules[module] = info
        sources[module] = (str(path), source)
    project = ProjectAnalysis(modules, sources)
    for ctx in contexts:
        project.adopt_context(ctx)
    for module, flows in built_flows.items():
        project.adopt_flows(module, flows)
    return project


def build_project_for_context(ctx: FileContext) -> ProjectAnalysis:
    """Single-file project for standalone ``lint_source`` runs."""
    flows: dict[str, ClassFlow] = {}
    info = build_module_info(ctx, content_hash(ctx.source), flows=flows)
    project = ProjectAnalysis(
        {ctx.module: info}, {ctx.module: (ctx.path, ctx.source)}
    )
    project.adopt_context(ctx)
    project.adopt_flows(ctx.module, flows)
    return project
