"""Content-hash result cache for the SSTD lint engine.

Linting is pure: findings are a function of (engine + rules, flags,
file path, file content).  The cache keys on exactly that — a sha256
over a fingerprint of the lint package's own sources, the selected
rule ids, the audit flags, the file's path, and the file's bytes — so
a cache entry can never serve stale findings: editing either the file
*or any lint rule* changes the key.

Entries live as small JSON files under ``.lint_cache/`` (git-ignored).
Every failure mode — unreadable file, corrupt entry, read-only cache
directory — degrades to a cache miss; the cache can make linting
faster but never change its output.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.devtools.lint.engine import Finding

__all__ = ["DEFAULT_CACHE_DIR", "LintCache"]

DEFAULT_CACHE_DIR = Path(".lint_cache")

_fingerprint: str | None = None


def _package_fingerprint() -> str:
    """Digest of the lint package's own sources (computed once).

    Any edit to the engine, the flow walker, or a rule module changes
    the fingerprint and therefore invalidates every cached entry.
    """
    global _fingerprint
    if _fingerprint is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).resolve().parent
        for source in sorted(package_dir.rglob("*.py")):
            digest.update(str(source.relative_to(package_dir)).encode())
            digest.update(b"\0")
            digest.update(source.read_bytes())
        _fingerprint = digest.hexdigest()
    return _fingerprint


class LintCache:
    """File-backed findings cache keyed by content hash."""

    def __init__(self, root: Path = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0

    def _key(
        self,
        path: Path,
        rule_ids: tuple[str, ...],
        audit_noqa: bool | None,
        source: bytes,
    ) -> str:
        digest = hashlib.sha256()
        for part in (
            _package_fingerprint(),
            ",".join(rule_ids),
            repr(audit_noqa),
            str(path),
        ):
            digest.update(part.encode())
            digest.update(b"\0")
        digest.update(source)
        return digest.hexdigest()

    def _entry(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(
        self,
        path: Path,
        rule_ids: tuple[str, ...],
        audit_noqa: bool | None,
    ) -> list[Finding] | None:
        """Stored findings for ``path``, or ``None`` on any miss."""
        try:
            source = path.read_bytes()
            raw = self._entry(
                self._key(path, rule_ids, audit_noqa, source)
            ).read_text(encoding="utf-8")
            payload = json.loads(raw)
            findings = [
                Finding(
                    rule_id=str(item["rule"]),
                    message=str(item["message"]),
                    path=str(item["path"]),
                    line=int(item["line"]),
                    col=int(item["col"]),
                )
                for item in payload["findings"]
            ]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(
        self,
        path: Path,
        rule_ids: tuple[str, ...],
        audit_noqa: bool | None,
        findings: list[Finding],
    ) -> None:
        """Store findings; silently a no-op if the cache is unwritable."""
        try:
            source = path.read_bytes()
            self.root.mkdir(parents=True, exist_ok=True)
            entry = self._entry(self._key(path, rule_ids, audit_noqa, source))
            entry.write_text(
                json.dumps({"findings": [f.as_dict() for f in findings]}),
                encoding="utf-8",
            )
        except OSError:
            return
