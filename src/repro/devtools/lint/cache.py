"""Content-hash result cache for the SSTD lint engine.

Linting is pure: findings are a function of (engine + rules, flags,
file path, file content, and — since the analysis went whole-program —
the content of every module in the file's dependency closure).  The
findings cache keys on exactly that: a sha256 over a fingerprint of
the lint package's own sources, the selected rule ids, the audit
flags, the file's path, the file's bytes, and the dependency-closure
digest the call-graph layer computes.  Editing the file, any lint
rule, *or any module it (transitively) calls into* changes the key, so
an entry can never serve stale findings.

A second, independent namespace caches the per-module **summaries**
(:class:`repro.devtools.lint.callgraph.ModuleInfo` payloads).  Those
are deliberately local — canonicalized against the module's own
imports but unresolved across modules — so their key needs only the
module's content hash; cross-module invalidation is the findings
cache's job.  A warm summary cache means an unchanged file is not even
parsed.

Entries live as small JSON files under ``.lint_cache/`` (git-ignored).
Every failure mode — unreadable file, corrupt entry, read-only cache
directory — degrades to a cache miss; the cache can make linting
faster but never change its output.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lint.engine import Finding

__all__ = ["CacheEntry", "DEFAULT_CACHE_DIR", "LintCache"]

DEFAULT_CACHE_DIR = Path(".lint_cache")

_fingerprint: str | None = None


def _package_fingerprint() -> str:
    """Digest of the lint package's own sources (computed once).

    Any edit to the engine, the flow walker, the call-graph layer, or
    a rule module changes the fingerprint and therefore invalidates
    every cached entry — findings and summaries alike.
    """
    global _fingerprint
    if _fingerprint is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).resolve().parent
        for source in sorted(package_dir.rglob("*.py")):
            digest.update(str(source.relative_to(package_dir)).encode())
            digest.update(b"\0")
            digest.update(source.read_bytes())
        _fingerprint = digest.hexdigest()
    return _fingerprint


@dataclass(slots=True)
class CacheEntry:
    """Findings plus the bookkeeping the deferred noqa audit needs."""

    findings: list[Finding]
    #: line -> rule ids a suppression on that line silenced.
    silenced: dict[int, set[str]] = field(default_factory=dict)
    #: line -> (codes or None for bare noqa, column) per noqa comment.
    noqa: dict[int, tuple[frozenset[str] | None, int]] = field(
        default_factory=dict
    )


class LintCache:
    """File-backed findings + summary cache keyed by content hash."""

    def __init__(self, root: Path = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.summary_hits = 0
        self.summary_misses = 0

    def _key(
        self,
        path: Path,
        rule_ids: tuple[str, ...],
        audit_noqa: bool | None,
        source: bytes,
        dep_digest: str = "",
    ) -> str:
        digest = hashlib.sha256()
        for part in (
            _package_fingerprint(),
            ",".join(rule_ids),
            repr(audit_noqa),
            str(path),
            dep_digest,
        ):
            digest.update(part.encode())
            digest.update(b"\0")
        digest.update(source)
        return digest.hexdigest()

    def _entry(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # -- findings --------------------------------------------------------
    def get(
        self,
        path: Path,
        rule_ids: tuple[str, ...],
        audit_noqa: bool | None,
        dep_digest: str = "",
        with_meta: bool = False,
    ) -> "list[Finding] | CacheEntry | None":
        """Stored findings for ``path``, or ``None`` on any miss.

        ``with_meta=True`` returns the full :class:`CacheEntry`
        (findings plus the silenced-line and noqa-comment maps the
        deferred stale-suppression audit consumes); entries written
        without that metadata miss, so old-format entries can never
        skew the audit.
        """
        try:
            source = path.read_bytes()
            raw = self._entry(
                self._key(path, rule_ids, audit_noqa, source, dep_digest)
            ).read_text(encoding="utf-8")
            payload = json.loads(raw)
            findings = [
                Finding(
                    rule_id=str(item["rule"]),
                    message=str(item["message"]),
                    path=str(item["path"]),
                    line=int(item["line"]),
                    col=int(item["col"]),
                    steps=tuple(
                        (str(s[0]), int(s[1]), int(s[2]), str(s[3]))
                        for s in item.get("steps", ())
                    ),
                )
                for item in payload["findings"]
            ]
            if with_meta:
                if "silenced" not in payload or "noqa" not in payload:
                    raise KeyError("metadata missing")
                silenced = {
                    int(line): {str(r) for r in rules}
                    for line, rules in payload["silenced"].items()
                }
                noqa = {
                    int(item[0]): (
                        None
                        if item[1] is None
                        else frozenset(str(c) for c in item[1]),
                        int(item[2]),
                    )
                    for item in payload["noqa"]
                }
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        if with_meta:
            return CacheEntry(findings=findings, silenced=silenced, noqa=noqa)
        return findings

    def put(
        self,
        path: Path,
        rule_ids: tuple[str, ...],
        audit_noqa: bool | None,
        findings: list[Finding],
        silenced: dict[int, set[str]] | None = None,
        noqa: dict[int, tuple[frozenset[str] | None, int]] | None = None,
        dep_digest: str = "",
    ) -> None:
        """Store findings; silently a no-op if the cache is unwritable."""
        try:
            source = path.read_bytes()
            self.root.mkdir(parents=True, exist_ok=True)
            entry = self._entry(
                self._key(path, rule_ids, audit_noqa, source, dep_digest)
            )
            payload: dict[str, object] = {
                "findings": [f.as_dict() for f in findings]
            }
            if silenced is not None and noqa is not None:
                payload["silenced"] = {
                    str(line): sorted(rules)
                    for line, rules in silenced.items()
                }
                payload["noqa"] = [
                    [
                        line,
                        None if codes is None else sorted(codes),
                        col,
                    ]
                    for line, (codes, col) in sorted(noqa.items())
                ]
            entry.write_text(json.dumps(payload), encoding="utf-8")
        except OSError:
            return

    # -- per-module summaries --------------------------------------------
    def _summary_key(self, path: "Path | str", content_hash: str) -> str:
        digest = hashlib.sha256()
        for part in (
            _package_fingerprint(),
            "summary",
            str(path),
            content_hash,
        ):
            digest.update(part.encode())
            digest.update(b"\0")
        return digest.hexdigest()

    def get_summary(
        self, path: "Path | str", content_hash: str
    ) -> dict | None:
        """Stored ModuleInfo payload, or ``None`` on any miss."""
        try:
            raw = self._entry(
                self._summary_key(path, content_hash)
            ).read_text(encoding="utf-8")
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("bad summary payload")
        except (OSError, ValueError):
            self.summary_misses += 1
            return None
        self.summary_hits += 1
        return payload

    def put_summary(
        self, path: "Path | str", content_hash: str, payload: dict
    ) -> None:
        """Store a ModuleInfo payload; no-op if the cache is unwritable."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._entry(self._summary_key(path, content_hash)).write_text(
                json.dumps(payload), encoding="utf-8"
            )
        except OSError:
            return
