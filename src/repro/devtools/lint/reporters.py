"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import collections
import json
from typing import Sequence

from repro.devtools.lint.engine import Finding

__all__ = ["render_json", "render_text"]


def render_text(findings: Sequence[Finding], n_files: int) -> str:
    """flake8-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [finding.format() for finding in findings]
    if findings:
        by_rule = collections.Counter(f.rule_id for f in findings)
        breakdown = ", ".join(
            f"{rule}={count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"{len(findings)} finding(s) in {n_files} file(s) ({breakdown})"
        )
    else:
        lines.append(f"clean: 0 findings in {n_files} file(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], n_files: int) -> str:
    """JSON document with findings plus per-rule counts."""
    by_rule: dict[str, int] = collections.Counter(f.rule_id for f in findings)
    payload = {
        "files_checked": n_files,
        "total": len(findings),
        "by_rule": dict(sorted(by_rule.items())),
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2)
