"""Finding reporters: human text, machine JSON, GitHub annotations, SARIF."""

from __future__ import annotations

import collections
import json
from typing import Sequence

from repro.devtools.lint.engine import Finding, Rule

__all__ = ["render_github", "render_json", "render_sarif", "render_text"]


def render_text(findings: Sequence[Finding], n_files: int) -> str:
    """flake8-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [finding.format() for finding in findings]
    if findings:
        by_rule = collections.Counter(f.rule_id for f in findings)
        breakdown = ", ".join(
            f"{rule}={count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"{len(findings)} finding(s) in {n_files} file(s) ({breakdown})"
        )
    else:
        lines.append(f"clean: 0 findings in {n_files} file(s)")
    return "\n".join(lines)


def _escape_property(value: str) -> str:
    """Escape a workflow-command *property* value (file=, title=)."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _escape_data(value: str) -> str:
    """Escape a workflow-command *message* (data after ``::``)."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(findings: Sequence[Finding], n_files: int) -> str:
    """GitHub Actions ``::error`` workflow commands, one per finding.

    Emitted to stdout inside a workflow run these become inline
    annotations on the PR diff; a trailing ``::notice`` carries the
    summary either way.
    """
    lines = [
        "::error file={file},line={line},col={col},title={title}::{message}".format(
            file=_escape_property(finding.path),
            line=finding.line,
            col=finding.col + 1,
            title=_escape_property(f"{finding.rule_id} lint"),
            message=_escape_data(f"{finding.rule_id} {finding.message}"),
        )
        for finding in findings
    ]
    summary = (
        f"{len(findings)} finding(s) in {n_files} file(s)"
        if findings
        else f"clean: 0 findings in {n_files} file(s)"
    )
    lines.append(f"::notice title=SSTD lint::{_escape_data(summary)}")
    return "\n".join(lines)


def render_sarif(
    findings: Sequence[Finding],
    n_files: int,
    rules: Sequence[Rule] = (),
) -> str:
    """SARIF 2.1.0 log, uploadable to GitHub code scanning.

    Rule metadata comes from ``rules`` (the registered rule objects);
    engine-level SSTD000 findings synthesize their descriptor on the
    fly so every result's ``ruleId`` resolves.  Columns are converted
    from the engine's 0-based offsets to SARIF's 1-based convention.
    """
    descriptors: dict[str, dict] = {
        rule.rule_id: {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
        }
        for rule in rules
    }
    for finding in findings:
        descriptors.setdefault(
            finding.rule_id,
            {
                "id": finding.rule_id,
                "shortDescription": {"text": "engine-level diagnostic"},
            },
        )
    rule_index = {
        rule_id: index for index, rule_id in enumerate(sorted(descriptors))
    }

    def _location(path: str, line: int, col: int) -> dict:
        return {
            "physicalLocation": {
                "artifactLocation": {
                    "uri": path.replace("\\", "/"),
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {
                    "startLine": line,
                    "startColumn": col + 1,
                },
            }
        }

    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index[finding.rule_id],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                _location(finding.path, finding.line, finding.col)
            ],
        }
        if finding.steps:
            # Path-style findings (SSTD014 leak paths) carry the full
            # acquire→leak trace; code scanning renders these as a
            # step-through under the result.
            result["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {
                                    "location": {
                                        **_location(spath, sline, scol),
                                        "message": {"text": note},
                                    }
                                }
                                for (spath, sline, scol, note) in finding.steps
                            ]
                        }
                    ]
                }
            ]
        results.append(result)
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "sstd-lint",
                        "rules": [
                            descriptors[rule_id]
                            for rule_id in sorted(descriptors)
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)


def render_json(findings: Sequence[Finding], n_files: int) -> str:
    """JSON document with findings plus per-rule counts."""
    by_rule: dict[str, int] = collections.Counter(f.rule_id for f in findings)
    payload = {
        "files_checked": n_files,
        "total": len(findings),
        "by_rule": dict(sorted(by_rule.items())),
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2)
