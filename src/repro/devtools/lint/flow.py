"""Intraprocedural lockset/flow analysis shared by the concurrency rules.

The per-node syntactic rules (SSTD001–006) can tell whether an access is
*lexically* inside ``with self._lock:``.  The concurrency rules
(SSTD007–010, SSTD012) need more: which locks are held on every path
reaching a statement, what a call's receiver *is* (a queue, a thread, a
lock, an instance of a project class), and whether a guarded value leaks
out of its lock's scope.  This module computes exactly that, once per
class, and the rules consume the result.

Two layers:

- :class:`ClassAttrModel` — a lightweight per-class attribute model.
  It records the ``# guarded-by:`` / ``# lock-alias:`` annotations (the
  same ones SSTD003 polices) and infers a coarse type for every
  ``self.<attr>`` assigned in the class body: lock, condition, queue
  (bounded or not), thread, process, event.  Inference is constructor
  pattern matching (``threading.Lock()``, ``queue.Queue(8)``,
  ``ctx.Process(...)``, list comprehensions of those), so it needs no
  imports resolved at runtime.  It additionally records, per attribute,
  the *constructor text* of class-valued attributes
  (``self.obs = Observability(...)``) — including values threaded
  through annotated ``__init__`` parameters — which the project call
  graph (:mod:`repro.devtools.lint.callgraph`) uses to resolve
  cross-class calls like ``self.obs.metrics.inc(...)``.

- :func:`analyze_class` — a lockset walker over each method body.  It
  propagates the set of held locks through the statement graph:
  ``with self._lock:`` blocks, local lock aliases (``lock = self._lock``
  then ``with lock:``), ``Condition`` aliases, explicit
  ``.acquire()``/``.release()`` pairs, and ``# holds-lock:`` entry
  annotations.  Branches are joined conservatively (a lock counts as
  held after an ``if`` only when both arms hold it); loop bodies are
  iterated to a lockset fixpoint so a release inside the loop is not
  forgotten after it.  The walker emits a stream of events — attribute
  accesses, calls, lock acquisitions, and lock-scope escapes — each
  stamped with the lockset at that program point.

Known approximations (see DESIGN.md for the full list): the analysis is
intraprocedural — one file at a time — but callers may supply
``helper_effects`` (net lock acquire/release effects of same-class
helpers, computed by the call-graph layer) so ``self._take_lock()``
idioms propagate.  Nested ``def`` bodies inherit the lexical lockset of
their definition site, ``except`` handlers are walked with the ``try``
entry lockset (the dominant ``with``-based idiom unwinds to exactly
that), and ``finally`` bodies run on the intersection of the normal and
exceptional locksets.

Since PR 8 this module also owns the **exception edges** of the CFG
(:func:`analyze_exceptions`): every ``raise`` — explicit, re-raise, or
raise-in-``finally`` — is resolved against the stack of enclosing
handlers (``except`` clauses and ``contextlib.suppress`` items), and
every call site is stamped with the exception names the enclosing
handlers would catch.  The call-graph layer folds these into
per-function exception-*escape* summaries, and the resource-lifecycle
rules (SSTD014-016) consume the same handler/``finally`` structure to
prove release-on-every-path.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from repro.devtools.lint.engine import FileContext
from repro.devtools.lint.names import dotted_name

__all__ = [
    "ALIAS_RE",
    "AccessEvent",
    "AcquireEvent",
    "AttrInfo",
    "CallEvent",
    "ClassAttrModel",
    "ClassFlow",
    "EscapeEvent",
    "ExceptionFlow",
    "EXC_BASES",
    "GUARDED_RE",
    "HOLDS_RE",
    "DELIBERATE_RE",
    "LOCK_ORDER_RE",
    "MethodFlow",
    "OWNS_RESOURCE_RE",
    "RAISES_RE",
    "RaiseSite",
    "analyze_class",
    "analyze_exceptions",
    "analyze_function",
    "annotation_class",
    "blocking_reason",
    "exception_caught",
    "iter_class_flows",
    "nonblocking_call",
    "self_attr",
]

GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(\w+)")
ALIAS_RE = re.compile(r"#\s*lock-alias:\s*(\w+)")
HOLDS_RE = re.compile(r"#\s*holds-lock:\s*(\w+)")
#: ``# lock-order: A < B`` — sanctioned acquisition hierarchy (SSTD012).
LOCK_ORDER_RE = re.compile(
    r"#\s*lock-order:\s*([\w.]+)\s*<\s*([\w.]+)"
)
#: ``# raises: ValueError, TimeoutError`` — declared exception contract
#: on a ``def`` line (SSTD015 checks the computed escape set against it).
RAISES_RE = re.compile(r"#\s*raises:\s*([\w.]+(?:\s*,\s*[\w.]+)*)")
#: ``# owns-resource:`` — sanctions storing an acquired resource on an
#: attribute, transferring lifecycle ownership to the object (SSTD014).
OWNS_RESOURCE_RE = re.compile(r"#\s*owns-resource:")
#: ``# deliberate: <reason>`` — sanctions swallowing a broad exception
#: in a runtime package (SSTD015); the reason is mandatory prose.
DELIBERATE_RE = re.compile(r"#\s*deliberate:\s*\S")

_LOCK_CTORS = frozenset({"Lock", "RLock"})
_QUEUE_CTORS = frozenset(
    {"Queue", "PriorityQueue", "LifoQueue", "SimpleQueue", "JoinableQueue"}
)
_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter"}
)
#: Constructor names that denote library plumbing, not project classes.
_NON_CLASS_CTORS = (
    _LOCK_CTORS
    | _QUEUE_CTORS
    | _MUTABLE_CTORS
    | {
        "Condition",
        "Event",
        "Thread",
        "Process",
        "Semaphore",
        "BoundedSemaphore",
        "tuple",
        "frozenset",
        "str",
        "int",
        "float",
        "bool",
    }
)


def is_mutable_container(expr: ast.expr) -> bool:
    """True for initializers that build a mutable container.

    Snapshotting an immutable guarded value (an int counter, a flag)
    under the lock is the sanctioned copy-out idiom; only *aliases* to
    mutable containers race after the lock is released, so the escape
    analysis keys off this predicate.
    """
    if isinstance(
        expr,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
    ):
        return True
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func) or ""
        return name.rsplit(".", 1)[-1] in _MUTABLE_CTORS
    return False


def self_attr(node: ast.expr) -> Optional[str]:
    """``attr`` for a plain ``self.<attr>`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def annotation_class(ann: Optional[ast.expr]) -> Optional[str]:
    """Candidate class name carried by a type annotation.

    ``Observability``, ``Observability | None``,
    ``Optional[Observability]``, and the stringified forms all yield
    ``"Observability"``; unions of two real classes yield nothing (the
    choice would be a guess).
    """
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
    candidates: list[str] = []
    for node in ast.walk(ann):
        name = None
        if isinstance(node, (ast.Name, ast.Attribute)):
            # Skip inner parts of an Attribute chain we already took.
            name = dotted_name(node)
        if name is None:
            continue
        last = name.rsplit(".", 1)[-1]
        if last in ("None", "Optional", "Union") or not last[:1].isupper():
            continue
        if name not in candidates:
            candidates.append(name)
        # Only consider the outermost chain once.
        break
    return candidates[0] if len(candidates) == 1 else None


@dataclass(frozen=True, slots=True)
class AttrInfo:
    """Coarse inferred type of one attribute or local variable.

    Attributes:
        kind: One of ``lock``, ``condition``, ``queue``, ``thread``,
            ``process``, ``event``.
        bounded: Queues only — True when constructed with a nonzero
            capacity (``put`` can block).
        daemon: Threads/processes only — constructed ``daemon=True``.
        container: True when the binding holds a *collection* of the
            kind (``self._threads = [Thread(...) for ...]``).
        reentrant: Locks only — constructed as an ``RLock`` (re-entry
            by the owning thread is legal, so a self-edge in the
            acquisition-order graph is not a deadlock).
    """

    kind: str
    bounded: bool = False
    daemon: bool = False
    container: bool = False
    reentrant: bool = False


def _truthy_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and bool(node.value)


def _classify_ctor(call: ast.Call) -> Optional[AttrInfo]:
    """AttrInfo for a recognized constructor call, else None."""
    name = dotted_name(call.func)
    if name is None:
        return None
    last = name.rsplit(".", 1)[-1]
    if last in _LOCK_CTORS:
        return AttrInfo("lock", reentrant=last == "RLock")
    if last == "Condition":
        return AttrInfo("condition")
    if last == "Event":
        return AttrInfo("event")
    if last in _QUEUE_CTORS:
        size: Optional[ast.expr] = call.args[0] if call.args else None
        for kw in call.keywords:
            if kw.arg == "maxsize":
                size = kw.value
        bounded = size is not None and (
            not isinstance(size, ast.Constant) or _truthy_constant(size)
        )
        return AttrInfo("queue", bounded=bounded)
    if last in ("Thread", "Process"):
        daemon = any(
            kw.arg == "daemon" and _truthy_constant(kw.value)
            for kw in call.keywords
        )
        return AttrInfo(last.lower(), daemon=daemon)
    return None


def classify_value(expr: ast.expr) -> Optional[AttrInfo]:
    """Classify the value side of an assignment (ctor or collection of)."""
    if isinstance(expr, ast.Call):
        return _classify_ctor(expr)
    elements: list[ast.expr] = []
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        elements = list(expr.elts)
    elif isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        elements = [expr.elt]
    for element in elements:
        if isinstance(element, ast.Call):
            info = _classify_ctor(element)
            if info is not None:
                return AttrInfo(
                    info.kind,
                    bounded=info.bounded,
                    daemon=info.daemon,
                    container=True,
                    reentrant=info.reentrant,
                )
    return None


def _ctor_class_text(expr: ast.expr, params: Mapping[str, str]) -> Optional[str]:
    """Raw dotted class text a value expression instantiates, if any.

    ``Observability(...)`` yields ``"Observability"``;
    ``Observability.from_env()`` yields ``"Observability.from_env"``
    (the call-graph layer decides whether that is a classmethod
    factory); a bare parameter name annotated with a class yields the
    annotated class; ``a if c else b`` tries both branches.
    """
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
        if name is None:
            return None
        if name.rsplit(".", 1)[-1] in _NON_CLASS_CTORS:
            return None
        return name
    if isinstance(expr, ast.Name):
        return params.get(expr.id)
    if isinstance(expr, ast.IfExp):
        return _ctor_class_text(expr.body, params) or _ctor_class_text(
            expr.orelse, params
        )
    return None


class ClassAttrModel:
    """Annotations plus inferred attribute types for one class body."""

    def __init__(self, ctx: FileContext, cls: ast.ClassDef) -> None:
        self.name = cls.name
        #: ``# guarded-by:`` — attr name -> guarding lock attr name.
        self.guards: dict[str, str] = {}
        #: ``# lock-alias:`` — condition attr name -> lock it wraps.
        self.aliases: dict[str, str] = {}
        #: Coarse type per ``self.<attr>``.
        self.attrs: dict[str, AttrInfo] = {}
        #: Attrs initialized to a mutable container (escape candidates).
        self.mutable: set[str] = set()
        #: Raw dotted class text per class-valued ``self.<attr>``.
        self.attr_classes: dict[str, str] = {}
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            else:
                targets = [node.target] if node.value is not None else []
            attr_names = [
                attr for attr in map(self_attr, targets) if attr is not None
            ]
            if not attr_names:
                continue
            line = ctx.line_text(node.lineno)
            guarded = GUARDED_RE.search(line)
            alias = ALIAS_RE.search(line)
            value = node.value
            info = classify_value(value) if value is not None else None
            for attr in attr_names:
                if guarded is not None:
                    self.guards[attr] = guarded.group(1)
                if alias is not None:
                    self.aliases[attr] = alias.group(1)
                if info is not None:
                    self.attrs[attr] = info
                if value is not None and is_mutable_container(value):
                    self.mutable.add(attr)
        self._collect_attr_classes(cls)

    def _collect_attr_classes(self, cls: ast.ClassDef) -> None:
        """Infer project-class-valued attributes, method by method.

        A second pass (rather than part of the main walk) because the
        parameter-annotation lookup needs the enclosing method's
        signature, which ``ast.walk`` over the class body loses.
        """
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params: dict[str, str] = {}
            args = method.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                candidate = annotation_class(arg.annotation)
                if candidate is not None:
                    params[arg.arg] = candidate
            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    list(node.targets)
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                attr_names = [
                    a for a in map(self_attr, targets) if a is not None
                ]
                if not attr_names:
                    continue
                text: Optional[str] = None
                if isinstance(node, ast.AnnAssign):
                    text = annotation_class(node.annotation)
                if text is None and node.value is not None:
                    text = _ctor_class_text(node.value, params)
                if text is None:
                    continue
                for attr in attr_names:
                    self.attr_classes.setdefault(attr, text)

    def lock_names(self) -> frozenset[str]:
        """Attr names that denote a lock (guard targets or Lock-typed)."""
        named = set(self.guards.values())
        typed = {a for a, i in self.attrs.items() if i.kind == "lock"}
        return frozenset(named | typed)

    def lock_for_attr(self, attr: str) -> Optional[str]:
        """Canonical lock represented by entering ``with self.<attr>:``.

        A lock attribute stands for itself; a ``# lock-alias:`` condition
        stands for the lock it wraps; anything else is not a lock.
        """
        if attr in self.aliases:
            return self.aliases[attr]
        if attr in self.lock_names():
            return attr
        if self.attrs.get(attr, AttrInfo("")).kind == "condition":
            # A Condition with no alias annotation guards as itself.
            return attr
        return None

    def lock_is_reentrant(self, lock: str) -> bool:
        info = self.attrs.get(lock)
        return info is not None and info.reentrant


@dataclass(frozen=True, slots=True)
class AccessEvent:
    """One read or write of ``self.<attr>`` at a known lockset."""

    node: ast.Attribute
    attr: str
    held: frozenset[str]
    write: bool
    method: str


@dataclass(frozen=True, slots=True)
class CallEvent:
    """One call site, with receiver text and the lockset at the call."""

    node: ast.Call
    callee: Optional[str]  # dotted text, e.g. "self._results.put"
    held: frozenset[str]
    method: str


@dataclass(frozen=True, slots=True)
class AcquireEvent:
    """One lock acquisition (``with`` entry or ``.acquire()``).

    ``held`` is the lockset *before* this acquisition — the edges of the
    SSTD012 acquisition-order graph are exactly
    ``{(h, lock) for h in held}``.
    """

    node: ast.AST
    lock: str
    held: frozenset[str]
    method: str


@dataclass(frozen=True, slots=True)
class EscapeEvent:
    """A guarded value captured under its lock, used after release."""

    node: ast.AST
    attr: str
    lock: str
    via: str
    method: str


@dataclass(slots=True)
class MethodFlow:
    """Everything the walker learned about one method body."""

    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    entry_locks: frozenset[str]
    accesses: list[AccessEvent] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    acquires: list[AcquireEvent] = field(default_factory=list)
    escapes: list[EscapeEvent] = field(default_factory=list)
    local_types: dict[str, AttrInfo] = field(default_factory=dict)
    #: Raw dotted class text per project-class-valued local variable.
    local_classes: dict[str, str] = field(default_factory=dict)
    #: Parameter name -> annotated class text (``def f(self, obs:
    #: Observability)``), used to resolve calls through parameters.
    params: dict[str, str] = field(default_factory=dict)
    #: Lockset at the end of the body (net ``.acquire()`` effects show
    #: up here; ``with`` blocks always balance).
    exit_locks: frozenset[str] = frozenset()


@dataclass(slots=True)
class ClassFlow:
    """Attribute model plus per-method flow summaries for one class."""

    node: ast.ClassDef
    model: ClassAttrModel
    methods: dict[str, MethodFlow] = field(default_factory=dict)

    def requires(self, method_name: str) -> frozenset[str]:
        """Locks a method is documented to need on entry (holds-lock)."""
        flow = self.methods.get(method_name)
        return flow.entry_locks if flow is not None else frozenset()


class _MethodWalker:
    """Walks one method body propagating the held lockset."""

    def __init__(
        self,
        model: ClassAttrModel,
        flow: MethodFlow,
        helper_effects: Mapping[str, tuple[frozenset[str], frozenset[str]]]
        | None = None,
        params: Mapping[str, str] | None = None,
    ) -> None:
        self.model = model
        self.flow = flow
        #: Same-class helper name -> (locks acquired, locks released) at
        #: exit; supplied by the call-graph layer's effects fixpoint.
        self.helper_effects = helper_effects or {}
        self.params = params or {}
        # Local name -> canonical lock it aliases (lock = self._lock).
        self.local_locks: dict[str, str] = {}
        # Local name -> (guarded attr, lock) captured while lock held.
        self.captures: dict[str, tuple[str, str]] = {}
        # Probe depth > 0 while re-walking a loop body to find its
        # lockset fixpoint; events are suppressed so nothing duplicates.
        self._probe = 0

    # -- statement level ------------------------------------------------
    def walk_block(
        self, stmts: list[ast.stmt], held: frozenset[str]
    ) -> frozenset[str]:
        for stmt in stmts:
            held = self.walk_stmt(stmt, held)
        return held

    def _probe_block(
        self, stmts: list[ast.stmt], held: frozenset[str]
    ) -> frozenset[str]:
        """Walk a block without emitting events, restoring alias state."""
        saved = (
            dict(self.local_locks),
            dict(self.captures),
            dict(self.flow.local_types),
            dict(self.flow.local_classes),
        )
        self._probe += 1
        try:
            return self.walk_block(stmts, held)
        finally:
            self._probe -= 1
            self.local_locks, self.captures = dict(saved[0]), dict(saved[1])
            self.flow.local_types = dict(saved[2])
            self.flow.local_classes = dict(saved[3])

    def _loop_entry(
        self, body: list[ast.stmt], held: frozenset[str]
    ) -> frozenset[str]:
        """Lockset holding at the top of every loop iteration.

        Iterates to a fixpoint: a lock released (or acquired) inside the
        body changes what later iterations — and the code after the
        loop — may assume.  Locksets only shrink under intersection, so
        this converges in at most ``len(held)`` probes.
        """
        entry = held
        while True:
            out = self._probe_block(body, entry)
            joined = entry & out
            if joined == entry:
                return entry
            entry = joined

    def walk_stmt(self, stmt: ast.stmt, held: frozenset[str]) -> frozenset[str]:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            acquired: set[str] = set()
            for item in stmt.items:
                self.visit_expr(item.context_expr, inner)
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    self._record_acquire(item.context_expr, lock, inner)
                    acquired.add(lock)
                    inner = inner | {lock}
                if item.optional_vars is not None:
                    self.visit_expr(item.optional_vars, inner, store=True)
            self.walk_block(stmt.body, inner)
            return held
        if isinstance(stmt, ast.If):
            self.visit_expr(stmt.test, held)
            after_body = self.walk_block(stmt.body, held)
            after_else = self.walk_block(stmt.orelse, held)
            return after_body & after_else
        if isinstance(stmt, (ast.While,)):
            entry = self._loop_entry(stmt.body, held)
            self.visit_expr(stmt.test, entry)
            out = self.walk_block(stmt.body, entry)
            self.walk_block(stmt.orelse, entry)
            # The loop may run zero times, so only locks surviving both
            # the skip path and a full iteration are held afterwards.
            return held & entry & out
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.visit_expr(stmt.iter, held)
            self._bind_loop_target(stmt.target, stmt.iter)
            entry = self._loop_entry(stmt.body, held)
            self.visit_expr(stmt.target, entry, store=True)
            out = self.walk_block(stmt.body, entry)
            self.walk_block(stmt.orelse, entry)
            return held & entry & out
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            after_body = self.walk_block(stmt.body, held)
            for handler in stmt.handlers:
                self.walk_block(handler.body, held)
            after_orelse = self.walk_block(stmt.orelse, after_body)
            # ``finally`` runs on the normal path (after body/orelse) and
            # on the exceptional path (lockset conservatively the entry
            # set); its own effects apply to whatever survives both.
            return self.walk_block(stmt.finalbody, held & after_orelse)
        if isinstance(stmt, ast.Assign):
            self.visit_expr(stmt.value, held)
            for target in stmt.targets:
                self._track_assignment(target, stmt.value, held)
                self.visit_expr(target, held, store=True)
            return self._apply_lock_calls(stmt.value, held)
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.visit_expr(stmt.value, held)
                self._track_assignment(stmt.target, stmt.value, held)
            self.visit_expr(stmt.target, held, store=True)
            return held
        if isinstance(stmt, ast.AugAssign):
            self.visit_expr(stmt.value, held)
            self.visit_expr(stmt.target, held, store=True)
            return held
        if isinstance(stmt, ast.Expr):
            self.visit_expr(stmt.value, held)
            return self._apply_lock_calls(stmt.value, held)
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.visit_expr(child, held)
            return held
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs run later; lexical lockset is an approximation
            # that matches how the repo uses worker-loop closures.
            self.walk_block(stmt.body, held)
            return held
        if isinstance(stmt, ast.ClassDef):
            return held
        # Pass/Break/Continue/Import/Global/Nonlocal: no lock effects.
        return held

    # -- expression level -----------------------------------------------
    def visit_expr(
        self, expr: ast.expr, held: frozenset[str], store: bool = False
    ) -> None:
        if isinstance(expr, ast.Attribute):
            attr = self_attr(expr)
            if attr is not None:
                if not self._probe:
                    self.flow.accesses.append(
                        AccessEvent(
                            node=expr,
                            attr=attr,
                            held=held,
                            write=store
                            or isinstance(expr.ctx, (ast.Store, ast.Del)),
                            method=self.flow.name,
                        )
                    )
                return
            self.visit_expr(expr.value, held)
            return
        if isinstance(expr, ast.Name):
            if not store:
                captured = self.captures.get(expr.id)
                if captured is not None and captured[1] not in held:
                    attr, lock = captured
                    if not self._probe:
                        self.flow.escapes.append(
                            EscapeEvent(
                                node=expr,
                                attr=attr,
                                lock=lock,
                                via=expr.id,
                                method=self.flow.name,
                            )
                        )
            return
        if isinstance(expr, ast.Call):
            if not self._probe:
                self.flow.calls.append(
                    CallEvent(
                        node=expr,
                        callee=dotted_name(expr.func),
                        held=held,
                        method=self.flow.name,
                    )
                )
            self.visit_expr(expr.func, held)
            for arg in expr.args:
                self.visit_expr(arg, held)
            for kw in expr.keywords:
                self.visit_expr(kw.value, held)
            return
        if isinstance(expr, ast.Lambda):
            self.visit_expr(expr.body, held)
            return
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in expr.generators:
                self.visit_expr(gen.iter, held)
                for cond in gen.ifs:
                    self.visit_expr(cond, held)
            if isinstance(expr, ast.DictComp):
                self.visit_expr(expr.key, held)
                self.visit_expr(expr.value, held)
            else:
                self.visit_expr(expr.elt, held)
            return
        if isinstance(expr, ast.Starred):
            self.visit_expr(expr.value, held, store=store)
            return
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self.visit_expr(element, held, store=store)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.visit_expr(child, held)

    # -- helpers --------------------------------------------------------
    def _record_acquire(
        self, node: ast.AST, lock: str, held: frozenset[str]
    ) -> None:
        if not self._probe:
            self.flow.acquires.append(
                AcquireEvent(
                    node=node, lock=lock, held=held, method=self.flow.name
                )
            )

    def _lock_of(self, expr: ast.expr) -> Optional[str]:
        """Canonical lock acquired by ``with <expr>:``, if any."""
        attr = self_attr(expr)
        if attr is not None:
            return self.model.lock_for_attr(attr)
        if isinstance(expr, ast.Name):
            return self.local_locks.get(expr.id)
        return None

    def _track_assignment(
        self, target: ast.expr, value: ast.expr, held: frozenset[str]
    ) -> None:
        """Record local lock aliases, captures, and ctor types."""
        if not isinstance(target, ast.Name):
            return
        name = target.id
        # Reassignment invalidates whatever the name stood for.
        self.local_locks.pop(name, None)
        self.captures.pop(name, None)
        self.flow.local_types.pop(name, None)
        self.flow.local_classes.pop(name, None)
        value_attr = self_attr(value)
        if value_attr is not None:
            lock = self.model.lock_for_attr(value_attr)
            if lock is not None:
                self.local_locks[name] = lock
                return
            guard = self.model.guards.get(value_attr)
            if (
                guard is not None
                and guard in held
                and value_attr in self.model.mutable
            ):
                self.captures[name] = (value_attr, guard)
            info = self.model.attrs.get(value_attr)
            if info is not None:
                self.flow.local_types[name] = info
            cls_text = self.model.attr_classes.get(value_attr)
            if cls_text is not None:
                self.flow.local_classes[name] = cls_text
            return
        info = classify_value(value)
        if info is not None:
            self.flow.local_types[name] = info
            return
        cls_text = _ctor_class_text(value, self.params)
        if cls_text is not None:
            self.flow.local_classes[name] = cls_text

    def _bind_loop_target(self, target: ast.expr, source: ast.expr) -> None:
        """``for t in self._threads:`` types ``t`` from the container."""
        if not isinstance(target, ast.Name):
            return
        info: Optional[AttrInfo] = None
        attr = self_attr(source)
        if attr is not None:
            info = self.model.attrs.get(attr)
        elif isinstance(source, ast.Name):
            info = self.flow.local_types.get(source.id)
        if info is not None and info.container:
            self.flow.local_types[target.id] = AttrInfo(
                info.kind,
                bounded=info.bounded,
                daemon=info.daemon,
                reentrant=info.reentrant,
            )

    def _apply_lock_calls(
        self, expr: ast.expr, held: frozenset[str]
    ) -> frozenset[str]:
        """``self._lock.acquire()`` / ``.release()`` statement effects.

        Also applies the net lock effects of same-class helper calls
        (``self._take_lock()``) when the call-graph layer supplied an
        effects table.
        """
        if not isinstance(expr, ast.Call):
            return held
        callee = dotted_name(expr.func)
        if (
            self.helper_effects
            and callee is not None
            and callee.startswith("self.")
            and "." not in callee[len("self."):]
        ):
            effects = self.helper_effects.get(callee[len("self."):])
            if effects is not None:
                acquired, released = effects
                for lock in sorted(acquired - held):
                    self._record_acquire(expr, lock, held)
                return (held | acquired) - released
        if not (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("acquire", "release")
        ):
            return held
        lock = self._lock_of(expr.func.value)
        if lock is None:
            return held
        if expr.func.attr == "acquire":
            self._record_acquire(expr, lock, held)
            return held | {lock}
        return held - {lock}


def _entry_locks(
    ctx: FileContext, method: ast.FunctionDef | ast.AsyncFunctionDef
) -> frozenset[str]:
    """Locks declared held on entry via ``# holds-lock:`` near the def."""
    held: set[str] = set()
    first_body_line = method.body[0].lineno if method.body else method.lineno
    for lineno in range(method.lineno, first_body_line + 1):
        match = HOLDS_RE.search(ctx.line_text(lineno))
        if match is not None:
            held.add(match.group(1))
    return frozenset(held)


def _params_of(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, str]:
    """Parameter name -> annotated class text for one signature."""
    params: dict[str, str] = {}
    args = node.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        candidate = annotation_class(arg.annotation)
        if candidate is not None:
            params[arg.arg] = candidate
    return params


def analyze_class(
    ctx: FileContext,
    cls: ast.ClassDef,
    helper_effects: Mapping[str, tuple[frozenset[str], frozenset[str]]]
    | None = None,
) -> ClassFlow:
    """Build the attribute model and walk every method of ``cls``.

    ``helper_effects`` maps same-class method names to their net
    (acquired, released) lock effects at exit — the call-graph layer
    computes it by fixpoint so ``self._take_lock()`` helpers propagate.
    """
    model = ClassAttrModel(ctx, cls)
    flow = ClassFlow(node=cls, model=model)
    for node in cls.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _params_of(node)
        method = MethodFlow(
            name=node.name,
            node=node,
            entry_locks=_entry_locks(ctx, node),
            params=params,
        )
        walker = _MethodWalker(
            model, method, helper_effects=helper_effects, params=params
        )
        method.exit_locks = walker.walk_block(node.body, method.entry_locks)
        flow.methods[node.name] = method
    return flow


def _empty_model() -> ClassAttrModel:
    """An attribute model with nothing in it (module-level functions)."""
    model = ClassAttrModel.__new__(ClassAttrModel)
    model.name = ""
    model.guards = {}
    model.aliases = {}
    model.attrs = {}
    model.mutable = set()
    model.attr_classes = {}
    return model


def analyze_function(
    ctx: FileContext, node: ast.FunctionDef | ast.AsyncFunctionDef
) -> MethodFlow:
    """Walk a module-level function body with an empty attribute model.

    Module-level functions have no ``self`` locks, so their entry
    lockset is empty and only local aliases/ctor types are tracked; the
    call graph still needs their call and blocking-leaf events.
    """
    params = _params_of(node)
    flow = MethodFlow(
        name=node.name, node=node, entry_locks=frozenset(), params=params
    )
    walker = _MethodWalker(_empty_model(), flow, params=params)
    flow.exit_locks = walker.walk_block(node.body, frozenset())
    return flow


def iter_class_flows(ctx: FileContext) -> Iterator[ClassFlow]:
    """Analyze every class in the file (including nested classes).

    When the file was linted as part of a whole-project run the
    project's memoized (effects-aware) flows are served instead of
    re-walking; standalone runs get the plain intraprocedural result.
    """
    project = getattr(ctx, "project", None)
    if project is not None and project.has_module(ctx.module):
        yield from project.class_flows(ctx.module)
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            yield analyze_class(ctx, node)


# ---------------------------------------------------------------------------
# Blocking-call classification (shared by SSTD008 and the call graph)
# ---------------------------------------------------------------------------


def nonblocking_call(call: ast.Call, meth: str) -> bool:
    """True for ``get(False)`` / ``put(x, False)`` / ``block=False``."""
    index = 0 if meth == "get" else 1
    if len(call.args) > index:
        arg = call.args[index]
        return isinstance(arg, ast.Constant) and arg.value is False
    for kw in call.keywords:
        if kw.arg == "block":
            return isinstance(kw.value, ast.Constant) and kw.value.value is False
    return False


def blocking_reason(
    event: CallEvent,
    model: ClassAttrModel | None,
    method: MethodFlow,
    imports,
) -> Optional[str]:
    """Why this call blocks, or None.  ``imports`` is a names.ImportMap.

    The classification is receiver-typed: ``join``/``start`` on threads
    and processes, blocking ``get``/bounded ``put`` on queues,
    ``time.sleep``, and ``.drain()``.  ``Condition.wait``/``notify`` are
    exempt (``wait`` releases the lock it wraps by design).
    """
    callee = event.callee
    if callee is None:
        return None
    root, _, rest = callee.partition(".")
    resolved = f"{imports.aliases.get(root, root)}.{rest}" if rest else root
    if resolved == "time.sleep":
        return "calls time.sleep()"
    receiver, _, meth = callee.rpartition(".")
    if not receiver:
        return None
    info: Optional[AttrInfo] = None
    if receiver.startswith("self."):
        attr = receiver[len("self."):]
        if "." not in attr and model is not None:
            info = model.attrs.get(attr)
    elif "." not in receiver:
        info = method.local_types.get(receiver)
    if meth == "join":
        root = receiver.split(".", 1)[0]
        if root != "self" and root in imports.aliases:
            return None  # module-level join (os.path.join)
        if info is not None and info.kind not in (
            "thread",
            "process",
            "queue",
        ):
            return None  # a str/list/lock receiver; join is not blocking
        return f"calls {receiver}.join(), which blocks until exit,"
    if meth == "drain":
        return (
            f"calls {receiver}.drain(), which blocks until every "
            "outstanding task finishes,"
        )
    if meth in ("get", "put"):
        if info is None or info.kind != "queue":
            return None
        if nonblocking_call(event.node, meth):
            return None
        if meth == "put" and not info.bounded:
            return None  # unbounded put never blocks
        return f"calls blocking {receiver}.{meth}()"
    if meth == "start":
        if info is not None and info.kind in ("thread", "process"):
            return f"spawns a {info.kind} via {receiver}.start()"
        return None
    return None


# ---------------------------------------------------------------------------
# Exception-aware CFG edges (shared by SSTD014-016 and the call graph)
# ---------------------------------------------------------------------------

#: Transitive *builtin* exception bases, so ``except OSError`` is known
#: to stop a ``FileNotFoundError`` without importing anything.  Project
#: exception hierarchies are not modeled (documented false negative);
#: in this repo every raised class is a builtin.
EXC_BASES: dict[str, frozenset[str]] = {
    name: frozenset(bases)
    for name, bases in {
        "ArithmeticError": ("Exception",),
        "AssertionError": ("Exception",),
        "AttributeError": ("Exception",),
        "BlockingIOError": ("OSError", "Exception"),
        "BrokenPipeError": ("ConnectionError", "OSError", "Exception"),
        "BufferError": ("Exception",),
        "ChildProcessError": ("OSError", "Exception"),
        "ConnectionAbortedError": ("ConnectionError", "OSError", "Exception"),
        "ConnectionError": ("OSError", "Exception"),
        "ConnectionRefusedError": ("ConnectionError", "OSError", "Exception"),
        "ConnectionResetError": ("ConnectionError", "OSError", "Exception"),
        "EOFError": ("Exception",),
        "FileExistsError": ("OSError", "Exception"),
        "FileNotFoundError": ("OSError", "Exception"),
        "FloatingPointError": ("ArithmeticError", "Exception"),
        "GeneratorExit": ("BaseException",),
        "ImportError": ("Exception",),
        "IndexError": ("LookupError", "Exception"),
        "InterruptedError": ("OSError", "Exception"),
        "IsADirectoryError": ("OSError", "Exception"),
        "KeyError": ("LookupError", "Exception"),
        "KeyboardInterrupt": ("BaseException",),
        "LookupError": ("Exception",),
        "MemoryError": ("Exception",),
        "ModuleNotFoundError": ("ImportError", "Exception"),
        "NotADirectoryError": ("OSError", "Exception"),
        "NotImplementedError": ("RuntimeError", "Exception"),
        "OSError": ("Exception",),
        "OverflowError": ("ArithmeticError", "Exception"),
        "PermissionError": ("OSError", "Exception"),
        "ProcessLookupError": ("OSError", "Exception"),
        "RecursionError": ("RuntimeError", "Exception"),
        "RuntimeError": ("Exception",),
        "StopAsyncIteration": ("Exception",),
        "StopIteration": ("Exception",),
        "SystemExit": ("BaseException",),
        "TimeoutError": ("OSError", "Exception"),
        "TypeError": ("Exception",),
        "UnicodeDecodeError": ("UnicodeError", "ValueError", "Exception"),
        "UnicodeEncodeError": ("UnicodeError", "ValueError", "Exception"),
        "UnicodeError": ("ValueError", "Exception"),
        "ValueError": ("Exception",),
        "ZeroDivisionError": ("ArithmeticError", "Exception"),
    }.items()
}

#: ``except Exception`` does not stop these (they subclass BaseException).
_NOT_EXCEPTION = frozenset({"SystemExit", "KeyboardInterrupt", "GeneratorExit"})


def exception_caught(name: str, frame: frozenset[str]) -> bool:
    """Would a handler catching the classes in ``frame`` stop ``name``?

    ``name`` may be dotted (matched by last segment) or ``"*"`` — an
    exception of statically unknown class, which only ``except
    Exception``/``BaseException``/bare ``except`` are assumed to stop.
    Unknown (non-builtin) raised classes are treated as ``Exception``
    subclasses, the overwhelmingly common case; the rare
    ``BaseException`` subclass slipping through a broad handler is an
    accepted false negative.
    """
    if "*" in frame or "BaseException" in frame:
        return True
    short = name.rsplit(".", 1)[-1]
    if short == "*":
        return "Exception" in frame
    if short in frame or name in frame:
        return True
    bases = EXC_BASES.get(short)
    if bases is not None and any(base in frame for base in bases):
        return True
    return "Exception" in frame and short not in _NOT_EXCEPTION


@dataclass(frozen=True, slots=True)
class RaiseSite:
    """One exception that escapes the analyzed function.

    Attributes:
        name: Exception class name (last-segment comparable), or ``"*"``
            for a re-raise of an unknown caught class.
        line: 1-based line of the ``raise``.
        col: 0-based column.
    """

    name: str
    line: int
    col: int


@dataclass(slots=True)
class ExceptionFlow:
    """Exception edges of one function body.

    Attributes:
        raises: Direct ``raise`` sites whose exception escapes the
            function (not stopped by any enclosing handler/suppress).
        caught_at: ``id(call_node)`` → union of exception names the
            handlers enclosing that call would catch (``"*"`` = all).
            Calls inside nested ``def``/``lambda`` bodies are stamped
            ``("*",)``: they do not run at definition time, so nothing
            they raise propagates out of *this* function.
    """

    raises: list[RaiseSite] = field(default_factory=list)
    caught_at: dict[int, tuple[str, ...]] = field(default_factory=dict)


def _handler_names(handler: ast.ExceptHandler) -> tuple[str, ...]:
    """Exception names one ``except`` clause catches (``"*"`` for bare)."""
    if handler.type is None:
        return ("*",)
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: list[str] = []
    for node in types:
        name = dotted_name(node)
        names.append(name if name else "*")
    return tuple(names)


def _suppressed_names(item: ast.withitem, imports) -> tuple[str, ...]:
    """Names suppressed by a ``contextlib.suppress(...)`` with-item."""
    call = item.context_expr
    if not isinstance(call, ast.Call):
        return ()
    callee = dotted_name(call.func) or ""
    root, _, rest = callee.partition(".")
    if imports is not None:
        resolved = f"{imports.aliases.get(root, root)}{'.' + rest if rest else ''}"
    else:
        resolved = callee
    if resolved not in ("contextlib.suppress", "suppress"):
        return ()
    names = [dotted_name(arg) or "*" for arg in call.args]
    return tuple(names) if names else ("*",)


_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _mark_calls(node: ast.AST, ctx: tuple[str, ...], out: dict[int, tuple[str, ...]]) -> None:
    """Stamp every call under ``node`` with ``ctx``; nested-def calls get ``("*",)``."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, _DEF_NODES) and current is not node:
            for inner in ast.walk(current):
                if isinstance(inner, ast.Call):
                    out[id(inner)] = ("*",)
            continue
        if isinstance(current, ast.Call):
            out[id(current)] = ctx
        stack.extend(ast.iter_child_nodes(current))


def analyze_exceptions(
    func: ast.FunctionDef | ast.AsyncFunctionDef, imports=None
) -> ExceptionFlow:
    """Exception edges of one function: escaping raises + per-call catchers.

    The walker keeps a stack of handler *frames* — the union of classes
    each enclosing ``try`` (over its *body* only: ``else``, handler and
    ``finally`` bodies unwind past it) or ``contextlib.suppress`` block
    would stop.  A ``raise`` whose class no frame catches escapes; a
    bare ``raise`` re-raises its handler's caught classes against the
    frames *outside* that handler; a raise in ``finally`` propagates
    under the outer frames.  ``imports`` is an optional
    :class:`~repro.devtools.lint.names.ImportMap` used only to
    recognize aliased ``contextlib.suppress``.
    """
    flow = ExceptionFlow()

    def escape(name: str, node: ast.stmt, frames: tuple[frozenset[str], ...]) -> None:
        if not any(exception_caught(name, frame) for frame in frames):
            flow.raises.append(RaiseSite(name, node.lineno, node.col_offset))

    def ctx_of(frames: tuple[frozenset[str], ...]) -> tuple[str, ...]:
        merged: set[str] = set()
        for frame in frames:
            merged |= frame
        return tuple(sorted(merged))

    def walk(
        stmts: list[ast.stmt],
        frames: tuple[frozenset[str], ...],
        handler_ctx: tuple[str, ...] | None,
    ) -> None:
        ctx = ctx_of(frames)
        for stmt in stmts:
            if isinstance(stmt, ast.Raise):
                _mark_calls(stmt, ctx, flow.caught_at)
                if stmt.exc is None:
                    # Bare re-raise: the active exception is whatever the
                    # enclosing handler caught (unknown at module top level).
                    for name in handler_ctx or ("*",):
                        escape(name, stmt, frames)
                else:
                    target = (
                        stmt.exc.func
                        if isinstance(stmt.exc, ast.Call)
                        else stmt.exc
                    )
                    escape(dotted_name(target) or "*", stmt, frames)
            elif isinstance(stmt, ast.Try) or (
                hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
            ):
                caught: set[str] = set()
                for handler in stmt.handlers:
                    caught.update(_handler_names(handler))
                body_frames = frames + (frozenset(caught),) if caught else frames
                walk(stmt.body, body_frames, handler_ctx)
                for handler in stmt.handlers:
                    walk(handler.body, frames, _handler_names(handler))
                # ``else`` and ``finally`` are NOT protected by this
                # try's handlers; a raise there unwinds to the outer
                # frames (raise-in-finally replaces any in-flight
                # exception, modeled as its own escaping raise).
                walk(stmt.orelse, frames, handler_ctx)
                walk(stmt.finalbody, frames, handler_ctx)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                suppressed: set[str] = set()
                for item in stmt.items:
                    _mark_calls(item.context_expr, ctx, flow.caught_at)
                    suppressed.update(_suppressed_names(item, imports))
                body_frames = (
                    frames + (frozenset(suppressed),) if suppressed else frames
                )
                walk(stmt.body, body_frames, handler_ctx)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                _mark_calls(stmt.iter, ctx, flow.caught_at)
                walk(stmt.body, frames, handler_ctx)
                walk(stmt.orelse, frames, handler_ctx)
            elif isinstance(stmt, ast.While):
                _mark_calls(stmt.test, ctx, flow.caught_at)
                walk(stmt.body, frames, handler_ctx)
                walk(stmt.orelse, frames, handler_ctx)
            elif isinstance(stmt, ast.If):
                _mark_calls(stmt.test, ctx, flow.caught_at)
                walk(stmt.body, frames, handler_ctx)
                walk(stmt.orelse, frames, handler_ctx)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                # Nested definitions run later (or never); their raises
                # are the *caller's* problem when the closure is invoked.
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Call):
                        flow.caught_at[id(inner)] = ("*",)
            else:
                # Assert is deliberately not an AssertionError escape:
                # asserts vanish under -O and annotating every public
                # API with AssertionError would drown the contract.
                _mark_calls(stmt, ctx, flow.caught_at)
    walk(func.body, (), None)
    return flow
