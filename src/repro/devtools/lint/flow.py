"""Intraprocedural lockset/flow analysis shared by the concurrency rules.

The per-node syntactic rules (SSTD001–006) can tell whether an access is
*lexically* inside ``with self._lock:``.  The concurrency rules
(SSTD007–010) need more: which locks are held on every path reaching a
statement, what a call's receiver *is* (a queue, a thread, a lock), and
whether a guarded value leaks out of its lock's scope.  This module
computes exactly that, once per class, and the rules consume the result.

Two layers:

- :class:`ClassAttrModel` — a lightweight per-class attribute model.
  It records the ``# guarded-by:`` / ``# lock-alias:`` annotations (the
  same ones SSTD003 polices) and infers a coarse type for every
  ``self.<attr>`` assigned in the class body: lock, condition, queue
  (bounded or not), thread, process, event.  Inference is constructor
  pattern matching (``threading.Lock()``, ``queue.Queue(8)``,
  ``ctx.Process(...)``, list comprehensions of those), so it needs no
  imports resolved at runtime.

- :func:`analyze_class` — a lockset walker over each method body.  It
  propagates the set of held locks through the statement graph:
  ``with self._lock:`` blocks, local lock aliases (``lock = self._lock``
  then ``with lock:``), ``Condition`` aliases, explicit
  ``.acquire()``/``.release()`` pairs, and ``# holds-lock:`` entry
  annotations.  Branches are joined conservatively (a lock counts as
  held after an ``if`` only when both arms hold it).  The walker emits
  a stream of events — attribute accesses, calls, and lock-scope
  escapes — each stamped with the lockset at that program point.

Known approximations (see DESIGN.md for the full list): the analysis is
intraprocedural (one level of ``self.<helper>()`` summaries, no
fixpoint across classes), nested ``def`` bodies inherit the lexical
lockset of their definition site, and ``try`` bodies are assumed not to
change the lockset.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.devtools.lint.engine import FileContext
from repro.devtools.lint.names import dotted_name

__all__ = [
    "ALIAS_RE",
    "AccessEvent",
    "AttrInfo",
    "CallEvent",
    "ClassAttrModel",
    "ClassFlow",
    "EscapeEvent",
    "GUARDED_RE",
    "HOLDS_RE",
    "MethodFlow",
    "analyze_class",
    "iter_class_flows",
    "self_attr",
]

GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(\w+)")
ALIAS_RE = re.compile(r"#\s*lock-alias:\s*(\w+)")
HOLDS_RE = re.compile(r"#\s*holds-lock:\s*(\w+)")

_LOCK_CTORS = frozenset({"Lock", "RLock"})
_QUEUE_CTORS = frozenset(
    {"Queue", "PriorityQueue", "LifoQueue", "SimpleQueue", "JoinableQueue"}
)
_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter"}
)


def is_mutable_container(expr: ast.expr) -> bool:
    """True for initializers that build a mutable container.

    Snapshotting an immutable guarded value (an int counter, a flag)
    under the lock is the sanctioned copy-out idiom; only *aliases* to
    mutable containers race after the lock is released, so the escape
    analysis keys off this predicate.
    """
    if isinstance(
        expr,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
    ):
        return True
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func) or ""
        return name.rsplit(".", 1)[-1] in _MUTABLE_CTORS
    return False


def self_attr(node: ast.expr) -> Optional[str]:
    """``attr`` for a plain ``self.<attr>`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass(frozen=True, slots=True)
class AttrInfo:
    """Coarse inferred type of one attribute or local variable.

    Attributes:
        kind: One of ``lock``, ``condition``, ``queue``, ``thread``,
            ``process``, ``event``.
        bounded: Queues only — True when constructed with a nonzero
            capacity (``put`` can block).
        daemon: Threads/processes only — constructed ``daemon=True``.
        container: True when the binding holds a *collection* of the
            kind (``self._threads = [Thread(...) for ...]``).
    """

    kind: str
    bounded: bool = False
    daemon: bool = False
    container: bool = False


def _truthy_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and bool(node.value)


def _classify_ctor(call: ast.Call) -> Optional[AttrInfo]:
    """AttrInfo for a recognized constructor call, else None."""
    name = dotted_name(call.func)
    if name is None:
        return None
    last = name.rsplit(".", 1)[-1]
    if last in _LOCK_CTORS:
        return AttrInfo("lock")
    if last == "Condition":
        return AttrInfo("condition")
    if last == "Event":
        return AttrInfo("event")
    if last in _QUEUE_CTORS:
        size: Optional[ast.expr] = call.args[0] if call.args else None
        for kw in call.keywords:
            if kw.arg == "maxsize":
                size = kw.value
        bounded = size is not None and (
            not isinstance(size, ast.Constant) or _truthy_constant(size)
        )
        return AttrInfo("queue", bounded=bounded)
    if last in ("Thread", "Process"):
        daemon = any(
            kw.arg == "daemon" and _truthy_constant(kw.value)
            for kw in call.keywords
        )
        return AttrInfo(last.lower(), daemon=daemon)
    return None


def classify_value(expr: ast.expr) -> Optional[AttrInfo]:
    """Classify the value side of an assignment (ctor or collection of)."""
    if isinstance(expr, ast.Call):
        return _classify_ctor(expr)
    elements: list[ast.expr] = []
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        elements = list(expr.elts)
    elif isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        elements = [expr.elt]
    for element in elements:
        if isinstance(element, ast.Call):
            info = _classify_ctor(element)
            if info is not None:
                return AttrInfo(
                    info.kind,
                    bounded=info.bounded,
                    daemon=info.daemon,
                    container=True,
                )
    return None


class ClassAttrModel:
    """Annotations plus inferred attribute types for one class body."""

    def __init__(self, ctx: FileContext, cls: ast.ClassDef) -> None:
        self.name = cls.name
        #: ``# guarded-by:`` — attr name -> guarding lock attr name.
        self.guards: dict[str, str] = {}
        #: ``# lock-alias:`` — condition attr name -> lock it wraps.
        self.aliases: dict[str, str] = {}
        #: Coarse type per ``self.<attr>``.
        self.attrs: dict[str, AttrInfo] = {}
        #: Attrs initialized to a mutable container (escape candidates).
        self.mutable: set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            else:
                targets = [node.target] if node.value is not None else []
            attr_names = [
                attr for attr in map(self_attr, targets) if attr is not None
            ]
            if not attr_names:
                continue
            line = ctx.line_text(node.lineno)
            guarded = GUARDED_RE.search(line)
            alias = ALIAS_RE.search(line)
            value = node.value
            info = classify_value(value) if value is not None else None
            for attr in attr_names:
                if guarded is not None:
                    self.guards[attr] = guarded.group(1)
                if alias is not None:
                    self.aliases[attr] = alias.group(1)
                if info is not None:
                    self.attrs[attr] = info
                if value is not None and is_mutable_container(value):
                    self.mutable.add(attr)

    def lock_names(self) -> frozenset[str]:
        """Attr names that denote a lock (guard targets or Lock-typed)."""
        named = set(self.guards.values())
        typed = {a for a, i in self.attrs.items() if i.kind == "lock"}
        return frozenset(named | typed)

    def lock_for_attr(self, attr: str) -> Optional[str]:
        """Canonical lock represented by entering ``with self.<attr>:``.

        A lock attribute stands for itself; a ``# lock-alias:`` condition
        stands for the lock it wraps; anything else is not a lock.
        """
        if attr in self.aliases:
            return self.aliases[attr]
        if attr in self.lock_names():
            return attr
        if self.attrs.get(attr, AttrInfo("")).kind == "condition":
            # A Condition with no alias annotation guards as itself.
            return attr
        return None


@dataclass(frozen=True, slots=True)
class AccessEvent:
    """One read or write of ``self.<attr>`` at a known lockset."""

    node: ast.Attribute
    attr: str
    held: frozenset[str]
    write: bool
    method: str


@dataclass(frozen=True, slots=True)
class CallEvent:
    """One call site, with receiver text and the lockset at the call."""

    node: ast.Call
    callee: Optional[str]  # dotted text, e.g. "self._results.put"
    held: frozenset[str]
    method: str


@dataclass(frozen=True, slots=True)
class EscapeEvent:
    """A guarded value captured under its lock, used after release."""

    node: ast.AST
    attr: str
    lock: str
    via: str
    method: str


@dataclass(slots=True)
class MethodFlow:
    """Everything the walker learned about one method body."""

    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    entry_locks: frozenset[str]
    accesses: list[AccessEvent] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    escapes: list[EscapeEvent] = field(default_factory=list)
    local_types: dict[str, AttrInfo] = field(default_factory=dict)


@dataclass(slots=True)
class ClassFlow:
    """Attribute model plus per-method flow summaries for one class."""

    node: ast.ClassDef
    model: ClassAttrModel
    methods: dict[str, MethodFlow] = field(default_factory=dict)

    def requires(self, method_name: str) -> frozenset[str]:
        """Locks a method is documented to need on entry (holds-lock)."""
        flow = self.methods.get(method_name)
        return flow.entry_locks if flow is not None else frozenset()


class _MethodWalker:
    """Walks one method body propagating the held lockset."""

    def __init__(
        self, model: ClassAttrModel, flow: MethodFlow
    ) -> None:
        self.model = model
        self.flow = flow
        # Local name -> canonical lock it aliases (lock = self._lock).
        self.local_locks: dict[str, str] = {}
        # Local name -> (guarded attr, lock) captured while lock held.
        self.captures: dict[str, tuple[str, str]] = {}

    # -- statement level ------------------------------------------------
    def walk_block(
        self, stmts: list[ast.stmt], held: frozenset[str]
    ) -> frozenset[str]:
        for stmt in stmts:
            held = self.walk_stmt(stmt, held)
        return held

    def walk_stmt(self, stmt: ast.stmt, held: frozenset[str]) -> frozenset[str]:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired: set[str] = set()
            for item in stmt.items:
                self.visit_expr(item.context_expr, held)
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    acquired.add(lock)
                if item.optional_vars is not None:
                    self.visit_expr(item.optional_vars, held, store=True)
            self.walk_block(stmt.body, held | acquired)
            return held
        if isinstance(stmt, ast.If):
            self.visit_expr(stmt.test, held)
            after_body = self.walk_block(stmt.body, held)
            after_else = self.walk_block(stmt.orelse, held)
            return after_body & after_else
        if isinstance(stmt, (ast.While,)):
            self.visit_expr(stmt.test, held)
            self.walk_block(stmt.body, held)
            self.walk_block(stmt.orelse, held)
            return held
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.visit_expr(stmt.iter, held)
            self._bind_loop_target(stmt.target, stmt.iter)
            self.visit_expr(stmt.target, held, store=True)
            self.walk_block(stmt.body, held)
            self.walk_block(stmt.orelse, held)
            return held
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            self.walk_block(stmt.body, held)
            for handler in stmt.handlers:
                self.walk_block(handler.body, held)
            self.walk_block(stmt.orelse, held)
            self.walk_block(stmt.finalbody, held)
            return held
        if isinstance(stmt, ast.Assign):
            self.visit_expr(stmt.value, held)
            for target in stmt.targets:
                self._track_assignment(target, stmt.value, held)
                self.visit_expr(target, held, store=True)
            return self._apply_lock_calls(stmt.value, held)
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.visit_expr(stmt.value, held)
                self._track_assignment(stmt.target, stmt.value, held)
            self.visit_expr(stmt.target, held, store=True)
            return held
        if isinstance(stmt, ast.AugAssign):
            self.visit_expr(stmt.value, held)
            self.visit_expr(stmt.target, held, store=True)
            return held
        if isinstance(stmt, ast.Expr):
            self.visit_expr(stmt.value, held)
            return self._apply_lock_calls(stmt.value, held)
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.visit_expr(child, held)
            return held
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs run later; lexical lockset is an approximation
            # that matches how the repo uses worker-loop closures.
            self.walk_block(stmt.body, held)
            return held
        if isinstance(stmt, ast.ClassDef):
            return held
        # Pass/Break/Continue/Import/Global/Nonlocal: no lock effects.
        return held

    # -- expression level -----------------------------------------------
    def visit_expr(
        self, expr: ast.expr, held: frozenset[str], store: bool = False
    ) -> None:
        if isinstance(expr, ast.Attribute):
            attr = self_attr(expr)
            if attr is not None:
                self.flow.accesses.append(
                    AccessEvent(
                        node=expr,
                        attr=attr,
                        held=held,
                        write=store or isinstance(expr.ctx, (ast.Store, ast.Del)),
                        method=self.flow.name,
                    )
                )
                return
            self.visit_expr(expr.value, held)
            return
        if isinstance(expr, ast.Name):
            if not store:
                captured = self.captures.get(expr.id)
                if captured is not None and captured[1] not in held:
                    attr, lock = captured
                    self.flow.escapes.append(
                        EscapeEvent(
                            node=expr,
                            attr=attr,
                            lock=lock,
                            via=expr.id,
                            method=self.flow.name,
                        )
                    )
            return
        if isinstance(expr, ast.Call):
            self.flow.calls.append(
                CallEvent(
                    node=expr,
                    callee=dotted_name(expr.func),
                    held=held,
                    method=self.flow.name,
                )
            )
            self.visit_expr(expr.func, held)
            for arg in expr.args:
                self.visit_expr(arg, held)
            for kw in expr.keywords:
                self.visit_expr(kw.value, held)
            return
        if isinstance(expr, ast.Lambda):
            self.visit_expr(expr.body, held)
            return
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in expr.generators:
                self.visit_expr(gen.iter, held)
                for cond in gen.ifs:
                    self.visit_expr(cond, held)
            if isinstance(expr, ast.DictComp):
                self.visit_expr(expr.key, held)
                self.visit_expr(expr.value, held)
            else:
                self.visit_expr(expr.elt, held)
            return
        if isinstance(expr, ast.Starred):
            self.visit_expr(expr.value, held, store=store)
            return
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self.visit_expr(element, held, store=store)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.visit_expr(child, held)

    # -- helpers --------------------------------------------------------
    def _lock_of(self, expr: ast.expr) -> Optional[str]:
        """Canonical lock acquired by ``with <expr>:``, if any."""
        attr = self_attr(expr)
        if attr is not None:
            return self.model.lock_for_attr(attr)
        if isinstance(expr, ast.Name):
            return self.local_locks.get(expr.id)
        return None

    def _track_assignment(
        self, target: ast.expr, value: ast.expr, held: frozenset[str]
    ) -> None:
        """Record local lock aliases, captures, and ctor types."""
        if not isinstance(target, ast.Name):
            return
        name = target.id
        # Reassignment invalidates whatever the name stood for.
        self.local_locks.pop(name, None)
        self.captures.pop(name, None)
        self.flow.local_types.pop(name, None)
        value_attr = self_attr(value)
        if value_attr is not None:
            lock = self.model.lock_for_attr(value_attr)
            if lock is not None:
                self.local_locks[name] = lock
                return
            guard = self.model.guards.get(value_attr)
            if (
                guard is not None
                and guard in held
                and value_attr in self.model.mutable
            ):
                self.captures[name] = (value_attr, guard)
            info = self.model.attrs.get(value_attr)
            if info is not None:
                self.flow.local_types[name] = info
            return
        info = classify_value(value)
        if info is not None:
            self.flow.local_types[name] = info

    def _bind_loop_target(self, target: ast.expr, source: ast.expr) -> None:
        """``for t in self._threads:`` types ``t`` from the container."""
        if not isinstance(target, ast.Name):
            return
        info: Optional[AttrInfo] = None
        attr = self_attr(source)
        if attr is not None:
            info = self.model.attrs.get(attr)
        elif isinstance(source, ast.Name):
            info = self.flow.local_types.get(source.id)
        if info is not None and info.container:
            self.flow.local_types[target.id] = AttrInfo(
                info.kind, bounded=info.bounded, daemon=info.daemon
            )

    def _apply_lock_calls(
        self, expr: ast.expr, held: frozenset[str]
    ) -> frozenset[str]:
        """``self._lock.acquire()`` / ``.release()`` statement effects."""
        if not (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("acquire", "release")
        ):
            return held
        lock = self._lock_of(expr.func.value)
        if lock is None:
            return held
        if expr.func.attr == "acquire":
            return held | {lock}
        return held - {lock}


def _entry_locks(
    ctx: FileContext, method: ast.FunctionDef | ast.AsyncFunctionDef
) -> frozenset[str]:
    """Locks declared held on entry via ``# holds-lock:`` near the def."""
    held: set[str] = set()
    first_body_line = method.body[0].lineno if method.body else method.lineno
    for lineno in range(method.lineno, first_body_line + 1):
        match = HOLDS_RE.search(ctx.line_text(lineno))
        if match is not None:
            held.add(match.group(1))
    return frozenset(held)


def analyze_class(ctx: FileContext, cls: ast.ClassDef) -> ClassFlow:
    """Build the attribute model and walk every method of ``cls``."""
    model = ClassAttrModel(ctx, cls)
    flow = ClassFlow(node=cls, model=model)
    for node in cls.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        method = MethodFlow(
            name=node.name, node=node, entry_locks=_entry_locks(ctx, node)
        )
        walker = _MethodWalker(model, method)
        walker.walk_block(node.body, method.entry_locks)
        flow.methods[node.name] = method
    return flow


def iter_class_flows(ctx: FileContext) -> Iterator[ClassFlow]:
    """Analyze every class in the file (including nested classes)."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            yield analyze_class(ctx, node)
