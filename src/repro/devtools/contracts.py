"""Runtime contracts for SSTD's numerical invariants.

The paper's quantities live on tight domains: transition/emission
matrices are row-stochastic (Section III-C), contribution scores lie in
``[-1, 1]`` (Section II, Definitions 1-3), posteriors and forward
filters live on the probability simplex.  Baum-Welch re-estimation
preserves all of these *only* when every intermediate stays finite and
non-negative — one NaN or negative count silently corrupts the model
and surfaces as nonsense three modules later.

The validators here are wired into the model-update boundaries
(:mod:`repro.hmm`, :mod:`repro.core.scores`, :mod:`repro.core.sstd`).
They are toggleable and cheap when off (one attribute load and branch),
so production paths keep full speed while tests, CI and debugging runs
enable them:

- set the environment variable ``REPRO_CONTRACTS=1`` (or ``true`` /
  ``yes`` / ``on``) before the process starts, or
- call :func:`set_contracts` / use the :func:`contracts` context
  manager at runtime.

On violation every validator raises :class:`ContractViolation` with the
offending name and values in the message.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

import numpy as np

__all__ = [
    "CONTRACTS_ENV_VAR",
    "ContractViolation",
    "assert_finite",
    "assert_probability_simplex",
    "assert_score_range",
    "assert_stochastic_matrix",
    "contracts",
    "contracts_enabled",
    "set_contracts",
]

#: Environment variable that enables contracts at import time.
CONTRACTS_ENV_VAR = "REPRO_CONTRACTS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class ContractViolation(AssertionError):
    """A numerical invariant was broken at a model-update boundary."""


_enabled = os.environ.get(CONTRACTS_ENV_VAR, "").strip().lower() in _TRUTHY


def contracts_enabled() -> bool:
    """Whether contract validators currently run."""
    return _enabled


def set_contracts(enabled: bool) -> bool:
    """Turn contract checking on or off; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextlib.contextmanager
def contracts(enabled: bool = True) -> Iterator[None]:
    """Context manager scoping a contracts on/off switch."""
    previous = set_contracts(enabled)
    try:
        yield
    finally:
        set_contracts(previous)


def _fail(message: str) -> None:
    raise ContractViolation(message)


def assert_finite(values: np.ndarray, name: str = "array") -> None:
    """``values`` must contain no NaN or infinity."""
    if not _enabled:
        return
    values = np.asarray(values, dtype=float)
    if not np.isfinite(values).all():
        bad = values[~np.isfinite(values)]
        _fail(f"{name} contains non-finite values: {bad[:8]!r}")


def assert_probability_simplex(
    values: np.ndarray, name: str = "distribution", atol: float = 1e-6
) -> None:
    """Rows of ``values`` (or the 1-D vector itself) must be distributions.

    Each row must be non-negative, finite, and sum to 1 within ``atol``.
    Accepts 1-D vectors and N-D arrays whose last axis is the simplex
    axis (e.g. ``(T, n_states)`` posterior matrices).
    """
    if not _enabled:
        return
    values = np.asarray(values, dtype=float)
    if not np.isfinite(values).all():
        _fail(f"{name} contains non-finite entries")
    if (values < 0).any():
        _fail(f"{name} has negative entries (min {values.min()!r})")
    sums = values.sum(axis=-1)
    if not np.allclose(sums, 1.0, atol=atol):
        _fail(
            f"{name} rows must sum to 1 within {atol}; "
            f"got sums in [{sums.min()!r}, {sums.max()!r}]"
        )


def assert_stochastic_matrix(
    matrix: np.ndarray, name: str = "matrix", atol: float = 1e-6
) -> None:
    """``matrix`` must be 2-D, non-negative, finite and row-stochastic.

    Unlike :func:`repro.hmm.utils.validate_stochastic_matrix` this does
    not require squareness, so it also covers the ``(n_states,
    n_symbols)`` emission matrix of the discrete HMM.
    """
    if not _enabled:
        return
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        _fail(f"{name} must be 2-D, got shape {matrix.shape}")
    assert_probability_simplex(matrix, name=name, atol=atol)


def assert_score_range(
    values: np.ndarray | float,
    name: str = "score",
    low: float = -1.0,
    high: float = 1.0,
) -> None:
    """Scores must be finite and lie in ``[low, high]``.

    Defaults cover the contribution score of paper Eq. (1): attitude in
    ``{-1, 0, +1}`` scaled by factors in ``[0, 1]`` keeps ``CS`` in
    ``[-1, 1]``.
    """
    if not _enabled:
        return
    values = np.asarray(values, dtype=float)
    if not np.isfinite(values).all():
        _fail(f"{name} contains non-finite values")
    if (values < low).any() or (values > high).any():
        _fail(
            f"{name} must lie in [{low}, {high}]; got range "
            f"[{values.min()!r}, {values.max()!r}]"
        )
