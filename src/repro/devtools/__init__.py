"""Correctness tooling for the SSTD reproduction.

Two halves, mirroring the role lint + sanitizers play in a training
stack:

- :mod:`repro.devtools.lint` — a project-specific AST lint engine whose
  SSTD rules enforce invariants the Python runtime never checks (lock
  discipline in the Work Queue layer, seeded randomness, log-space
  numerics confined to the sanctioned helpers, ...).  Run it with
  ``python -m repro.devtools.lint src/repro`` or ``repro-cli lint``.
- :mod:`repro.devtools.contracts` — cheap runtime validators for the
  probability-simplex and score-range invariants of the paper
  (Definitions 1-3, Eq. (5)), toggled by the ``REPRO_CONTRACTS``
  environment variable so EM steps fail loudly at the step that
  corrupted a distribution instead of three modules later.
"""

from repro.devtools.contracts import (
    ContractViolation,
    contracts_enabled,
    set_contracts,
)

# NOTE: the `contracts` *submodule* is deliberately not shadowed here —
# instrumented modules rely on `from repro.devtools import contracts`
# resolving to the module; use `contracts.contracts(...)` (or import it
# from the submodule) for the scoped on/off context manager.
__all__ = [
    "ContractViolation",
    "contracts_enabled",
    "set_contracts",
]
