"""Online stream clustering: tweets -> claims (paper Section V-A2).

The paper's claim generator is "a variant of K-means" run online: a new
tweet joins the nearest existing cluster by Jaccard distance, a new
cluster is opened when nothing is close enough, and a cluster whose
diameter grows beyond a threshold is split in two.  Each cluster is one
*claim*; its centroid tokens give the claim text.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.text.jaccard import jaccard_distance
from repro.text.tokenize import token_set

__all__ = [
    "Cluster",
    "OnlineClaimClusterer",
]


@dataclass
class Cluster:
    """One tweet cluster (= one claim)."""

    cluster_id: str
    token_counts: Counter = field(default_factory=Counter)
    size: int = 0
    sample_sets: list[frozenset[str]] = field(default_factory=list)

    def centroid(self, top_k: int = 12) -> frozenset[str]:
        """Most frequent tokens — the cluster's Jaccard representative."""
        return frozenset(
            token for token, _ in self.token_counts.most_common(top_k)
        )

    def centroid_text(self, top_k: int = 8) -> str:
        return " ".join(
            token for token, _ in self.token_counts.most_common(top_k)
        )

    def add(self, tokens: frozenset[str], max_samples: int = 32) -> None:
        self.token_counts.update(tokens)
        self.size += 1
        if len(self.sample_sets) < max_samples:
            self.sample_sets.append(tokens)

    def diameter(self) -> float:
        """Max pairwise Jaccard distance over the retained samples."""
        worst = 0.0
        for a, b in itertools.combinations(self.sample_sets, 2):
            worst = max(worst, jaccard_distance(a, b))
        return worst


class OnlineClaimClusterer:
    """Incremental Jaccard clustering with diameter-triggered splits.

    Args:
        join_threshold: Maximum Jaccard distance at which a tweet joins
            an existing cluster (else a new cluster opens).
        split_threshold: Diameter above which a cluster is split in two
            (the paper's "pre-specified threshold learned from previous
            case studies").
        centroid_top_k: Tokens kept in the centroid representation.
    """

    def __init__(
        self,
        join_threshold: float = 0.7,
        split_threshold: float = 0.9,
        centroid_top_k: int = 12,
    ) -> None:
        if not 0.0 < join_threshold <= 1.0:
            raise ValueError("join_threshold must be in (0, 1]")
        if not 0.0 < split_threshold <= 1.0:
            raise ValueError("split_threshold must be in (0, 1]")
        self.join_threshold = join_threshold
        self.split_threshold = split_threshold
        self.centroid_top_k = centroid_top_k
        self.clusters: dict[str, Cluster] = {}
        self._counter = itertools.count(1)

    def _new_cluster(self) -> Cluster:
        cluster = Cluster(cluster_id=f"claim-{next(self._counter):05d}")
        self.clusters[cluster.cluster_id] = cluster
        return cluster

    def _nearest(self, tokens: frozenset[str]) -> tuple[Optional[Cluster], float]:
        best: Optional[Cluster] = None
        best_distance = 2.0
        for cluster in self.clusters.values():
            distance = jaccard_distance(
                tokens, cluster.centroid(self.centroid_top_k)
            )
            if distance < best_distance:
                best, best_distance = cluster, distance
        return best, best_distance

    def assign(self, text: str) -> str:
        """Cluster one tweet; returns the claim (cluster) id."""
        tokens = token_set(text)
        cluster, distance = self._nearest(tokens)
        if cluster is None or distance > self.join_threshold:
            cluster = self._new_cluster()
        cluster.add(tokens)
        if (
            len(cluster.sample_sets) >= 4
            and cluster.diameter() > self.split_threshold
        ):
            self._split(cluster)
        return cluster.cluster_id

    def _split(self, cluster: Cluster) -> None:
        """Split a too-diverse cluster around its two farthest samples."""
        samples = cluster.sample_sets
        worst_pair = None
        worst = -1.0
        for a, b in itertools.combinations(samples, 2):
            distance = jaccard_distance(a, b)
            if distance > worst:
                worst, worst_pair = distance, (a, b)
        if worst_pair is None:
            return
        seed_a, seed_b = worst_pair
        sibling = self._new_cluster()
        keep: list[frozenset[str]] = []
        cluster.token_counts.clear()
        old_size = cluster.size
        cluster.size = 0
        for tokens in samples:
            if jaccard_distance(tokens, seed_a) <= jaccard_distance(tokens, seed_b):
                keep.append(tokens)
                cluster.token_counts.update(tokens)
                cluster.size += 1
            else:
                sibling.add(tokens)
        cluster.sample_sets = keep
        # Unsampled mass stays with the original cluster.
        cluster.size += max(0, old_size - len(samples))

    def assign_all(self, texts: Iterable[str]) -> list[str]:
        return [self.assign(text) for text in texts]

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)
