"""Uncertainty (hedge) classifier (paper Definition 2, Section V-A2).

The paper trains "a simple text classifier using skit-learn [sic] ...
with the training data provided by CoNLL-2010 Shared Task" (hedge
detection).  Neither scikit-learn nor the CoNLL data are available
offline, so this module substitutes both (DESIGN.md Section 3):

- a from-scratch **multinomial Naive Bayes** classifier (the same model
  family a "simple text classifier" denotes), and
- a built-in hedge-cue training corpus in the spirit of CoNLL-2010:
  sentences labelled *hedged* (speculative language: "might", "possibly",
  "unconfirmed") vs *confident*.

The classifier's output is ``P(hedged | text)`` clamped to ``[0, 1)`` —
exactly the uncertainty score kappa that Eq. (1) consumes.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from repro.text.tokenize import tokenize

__all__ = [
    "HEDGE_CORPUS",
    "NaiveBayesHedgeClassifier",
]

#: Built-in training corpus: (text, is_hedged).  Kept deliberately
#: domain-generic; scenario benchmarks never train on their own traces.
HEDGE_CORPUS: tuple[tuple[str, bool], ...] = (
    ("unconfirmed reports of an explosion downtown", True),
    ("this might be true but i am not sure", True),
    ("possibly a shooting near the stadium, waiting for confirmation", True),
    ("hearing rumors that the bridge is closed, can anyone confirm", True),
    ("it seems like the suspect escaped, maybe towards the river", True),
    ("allegedly the school is on lockdown, not verified", True),
    ("sources suggest there could be casualties, unclear so far", True),
    ("apparently the game is tied, not certain though", True),
    ("perhaps the road is blocked, hard to tell from here", True),
    ("some say the power is out, unverified claims circulating", True),
    ("reportedly two suspects, details remain unclear", True),
    ("i think the train derailed but this is speculation", True),
    ("rumor going around that the mayor resigned, who knows", True),
    ("may have been a gas leak, awaiting official word", True),
    ("supposedly the airport reopened, anyone able to verify", True),
    ("looks like it could be a drill, uncertain at this point", True),
    ("police confirm a shooting at the campus library", False),
    ("breaking the bridge is closed both directions", False),
    ("i am standing here watching the fire spread", False),
    ("officials announce two arrests were made tonight", False),
    ("the score is now fourteen to seven", False),
    ("the governor declared a state of emergency", False),
    ("just saw the suspect taken into custody", False),
    ("the road reopened five minutes ago", False),
    ("confirmed the flight landed safely", False),
    ("we won the game in overtime", False),
    ("the power is back on in our neighborhood", False),
    ("the museum evacuation is complete everyone is out", False),
    ("firefighters contained the blaze before midnight", False),
    ("the final whistle just blew it is over", False),
    ("city hall issued an official statement this morning", False),
    ("witnesses filmed the arrest as it happened", False),
)


class NaiveBayesHedgeClassifier:
    """Multinomial Naive Bayes over tweet tokens with Laplace smoothing."""

    def __init__(
        self,
        corpus: Sequence[tuple[str, bool]] = HEDGE_CORPUS,
        smoothing: float = 1.0,
    ) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing must be > 0")
        self.smoothing = smoothing
        self._hedged_counts: Counter = Counter()
        self._confident_counts: Counter = Counter()
        self._hedged_docs = 0
        self._confident_docs = 0
        self.train(corpus)

    def train(self, corpus: Iterable[tuple[str, bool]]) -> None:
        """Add labelled examples (incremental: counts accumulate)."""
        for text, is_hedged in corpus:
            tokens = tokenize(text)
            if is_hedged:
                self._hedged_counts.update(tokens)
                self._hedged_docs += 1
            else:
                self._confident_counts.update(tokens)
                self._confident_docs += 1
        self._vocabulary = set(self._hedged_counts) | set(self._confident_counts)

    def hedge_probability(self, text: str) -> float:
        """P(hedged | text) under the Naive Bayes model."""
        if self._hedged_docs == 0 or self._confident_docs == 0:
            raise RuntimeError("classifier needs examples of both classes")
        tokens = tokenize(text)
        total_docs = self._hedged_docs + self._confident_docs
        log_hedged = math.log(self._hedged_docs / total_docs)
        log_confident = math.log(self._confident_docs / total_docs)

        vocab_size = max(len(self._vocabulary), 1)
        hedged_total = sum(self._hedged_counts.values())
        confident_total = sum(self._confident_counts.values())
        for token in tokens:
            log_hedged += math.log(
                (self._hedged_counts[token] + self.smoothing)
                / (hedged_total + self.smoothing * vocab_size)
            )
            log_confident += math.log(
                (self._confident_counts[token] + self.smoothing)
                / (confident_total + self.smoothing * vocab_size)
            )
        # Stable softmax over the two log joints.
        peak = max(log_hedged, log_confident)
        hedged = math.exp(log_hedged - peak)
        confident = math.exp(log_confident - peak)
        return hedged / (hedged + confident)

    def uncertainty_score(self, text: str) -> float:
        """The kappa of Eq. (1): P(hedged | text), clamped into [0, 1)."""
        return min(self.hedge_probability(text), 1.0 - 1e-9)

    def classify(self, text: str) -> bool:
        """True when the text is more likely hedged than confident."""
        return self.hedge_probability(text) > 0.5
