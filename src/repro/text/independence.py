"""Independence scorer (paper Definition 3, Section V-A2).

"To compute the Independent Score, we classified the retweets or tweets
that are significantly similar to the previous tweets within a time
interval as repeated claims and assign them relatively low independent
scores."

The scorer therefore flags (a) explicit retweets (``RT @user:`` prefix)
and (b) near-duplicates of recent tweets by Jaccard similarity inside a
sliding time window, and maps both to a low eta.
"""

from __future__ import annotations

import collections
import re
from dataclasses import dataclass

from repro.text.jaccard import jaccard_similarity
from repro.text.tokenize import token_set

__all__ = [
    "IndependenceConfig",
    "IndependenceScorer",
    "is_retweet",
]

_RT_RE = re.compile(r"^\s*rt\s+@\w+", re.IGNORECASE)


@dataclass(frozen=True, slots=True)
class IndependenceConfig:
    """Scoring thresholds.

    Attributes:
        window: Seconds of history a tweet is compared against.
        duplicate_similarity: Jaccard similarity above which a tweet
            counts as a copy of a recent one.
        copy_score: Eta assigned to retweets / near-duplicates.
        fresh_score: Eta assigned to independent reports.
        max_history: Cap on remembered recent tweets (memory bound).
    """

    window: float = 600.0
    duplicate_similarity: float = 0.8
    copy_score: float = 0.2
    fresh_score: float = 1.0
    max_history: int = 512

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be > 0")
        if not 0.0 <= self.duplicate_similarity <= 1.0:
            raise ValueError("duplicate_similarity must be in [0, 1]")
        if not 0.0 < self.copy_score <= self.fresh_score <= 1.0:
            raise ValueError("need 0 < copy_score <= fresh_score <= 1")


def is_retweet(text: str) -> bool:
    """Whether the text is an explicit retweet (``RT @user: ...``)."""
    return bool(_RT_RE.match(text))


class IndependenceScorer:
    """Streaming eta scorer with a per-claim recent-tweet memory."""

    def __init__(self, config: IndependenceConfig | None = None) -> None:
        self.config = config or IndependenceConfig()
        self._history: dict[str, collections.deque] = collections.defaultdict(
            lambda: collections.deque(maxlen=self.config.max_history)
        )

    def score(self, claim_id: str, text: str, timestamp: float) -> float:
        """Eta of one tweet; also records it for future comparisons.

        Tweets must arrive in non-decreasing timestamp order per claim.
        """
        config = self.config
        history = self._history[claim_id]
        while history and history[0][0] < timestamp - config.window:
            history.popleft()

        tokens = token_set(text)
        copied = is_retweet(text)
        if not copied:
            for _, seen_tokens in history:
                if (
                    jaccard_similarity(tokens, seen_tokens)
                    >= config.duplicate_similarity
                ):
                    copied = True
                    break

        history.append((timestamp, tokens))
        return config.copy_score if copied else config.fresh_score
