"""End-to-end tweet pre-processing pipeline (paper Section V-A2).

Raw tweets go in; scored :class:`~repro.core.types.Report` records come
out, ready for any truth-discovery algorithm:

1. keyword filter drops off-topic tweets;
2. the online clusterer assigns each tweet to a claim;
3. the attitude classifier sets rho;
4. the Naive Bayes hedge classifier sets kappa;
5. the independence scorer sets eta.

The pipeline is a *plugin architecture* exactly as the paper describes
("one can easily update or replace components like uncertainty
classifier as a plugin of the system"): every stage is a constructor
argument with a sensible default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.types import Report
from repro.text.attitude import AttitudeClassifier
from repro.text.clustering import OnlineClaimClusterer
from repro.text.independence import IndependenceScorer
from repro.text.keywords import KeywordFilter
from repro.text.uncertainty import NaiveBayesHedgeClassifier

__all__ = [
    "RawTweet",
    "TweetPipeline",
]


@dataclass(frozen=True, slots=True)
class RawTweet:
    """An unprocessed tweet as collected from the (simulated) API."""

    source_id: str
    text: str
    timestamp: float

    def __post_init__(self) -> None:
        if not self.source_id:
            raise ValueError("source_id must be non-empty")
        if self.timestamp < 0:
            raise ValueError("timestamp must be >= 0")


class TweetPipeline:
    """Composable tweet -> Report pipeline.

    Example:
        >>> pipeline = TweetPipeline()
        >>> report = pipeline.process(
        ...     RawTweet("alice", "BREAKING: bridge closed", 12.0)
        ... )
        >>> report.claim_id                                # doctest: +SKIP
        'claim-00001'
    """

    def __init__(
        self,
        keyword_filter: Optional[KeywordFilter] = None,
        clusterer: Optional[OnlineClaimClusterer] = None,
        attitude: Optional[AttitudeClassifier] = None,
        uncertainty: Optional[NaiveBayesHedgeClassifier] = None,
        independence: Optional[IndependenceScorer] = None,
    ) -> None:
        self.keyword_filter = keyword_filter
        self.clusterer = clusterer or OnlineClaimClusterer()
        self.attitude = attitude or AttitudeClassifier()
        self.uncertainty = uncertainty or NaiveBayesHedgeClassifier()
        self.independence = independence or IndependenceScorer()
        self.dropped = 0
        self.processed = 0

    def process(self, tweet: RawTweet) -> Optional[Report]:
        """Score one tweet; returns None when the keyword filter drops it."""
        if self.keyword_filter is not None and not self.keyword_filter.matches(
            tweet.text
        ):
            self.dropped += 1
            return None
        claim_id = self.clusterer.assign(tweet.text)
        attitude = self.attitude.classify(tweet.text)
        kappa = self.uncertainty.uncertainty_score(tweet.text)
        eta = self.independence.score(claim_id, tweet.text, tweet.timestamp)
        self.processed += 1
        return Report(
            source_id=tweet.source_id,
            claim_id=claim_id,
            timestamp=tweet.timestamp,
            attitude=attitude,
            uncertainty=kappa,
            independence=eta,
            text=tweet.text,
        )

    def process_stream(self, tweets: Iterable[RawTweet]) -> list[Report]:
        """Score a whole (time-ordered) stream, dropping filtered tweets."""
        reports = []
        for tweet in tweets:
            report = self.process(tweet)
            if report is not None:
                reports.append(report)
        return reports
