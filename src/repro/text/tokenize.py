"""Tweet tokenization.

Small, dependency-free tokenizer tuned for micro-blog text: lowercases,
keeps hashtags and @mentions as single tokens, strips URLs and
punctuation.  Everything downstream (Jaccard distance, clustering, the
attitude and hedge classifiers) consumes these tokens.
"""

from __future__ import annotations

import re
from typing import Iterable

__all__ = [
    "STOPWORDS",
    "content_tokens",
    "ngrams",
    "token_set",
    "tokenize",
]

_URL_RE = re.compile(r"https?://\S+|www\.\S+")
_TOKEN_RE = re.compile(r"[#@]?[a-z0-9']+")

#: Common English stopwords; kept short on purpose — micro-blog text is
#: short and over-aggressive stopword removal destroys Jaccard signal.
STOPWORDS = frozenset(
    """a an and are as at be but by for from has have i in is it its of on
    or s t that the this to was we were will with you your""".split()
)


def tokenize(text: str) -> list[str]:
    """Tokens of ``text``: lowercase words, hashtags, and mentions."""
    cleaned = _URL_RE.sub(" ", text.lower())
    return _TOKEN_RE.findall(cleaned)


def content_tokens(text: str) -> list[str]:
    """Tokens minus stopwords and pure-number tokens."""
    return [
        token
        for token in tokenize(text)
        if token not in STOPWORDS and not token.isdigit()
    ]


def token_set(text: str) -> frozenset[str]:
    """Deduplicated content tokens (the Jaccard representation)."""
    return frozenset(content_tokens(text))


def ngrams(tokens: Iterable[str], n: int = 2) -> list[tuple[str, ...]]:
    """Consecutive n-grams of a token sequence."""
    if n < 1:
        raise ValueError("n must be >= 1")
    tokens = list(tokens)
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]
