"""Jaccard distance for micro-blog clustering (paper Section V-A2).

The paper clusters tweets into claims with "a commonly used distance
metric for micro-blog data clustering (i.e., Jaccard distance)".
"""

from __future__ import annotations

from typing import Iterable

from repro.text.tokenize import token_set

__all__ = [
    "jaccard_distance",
    "jaccard_similarity",
    "pairwise_max_distance",
    "text_distance",
]


def jaccard_similarity(a: frozenset[str], b: frozenset[str]) -> float:
    """|a intersect b| / |a union b|; two empty sets count as identical."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def jaccard_distance(a: frozenset[str], b: frozenset[str]) -> float:
    """1 - Jaccard similarity; a proper metric on finite sets."""
    return 1.0 - jaccard_similarity(a, b)


def text_distance(text_a: str, text_b: str) -> float:
    """Jaccard distance between the token sets of two raw texts."""
    return jaccard_distance(token_set(text_a), token_set(text_b))


def pairwise_max_distance(texts: Iterable[str]) -> float:
    """Diameter of a set of texts under Jaccard distance.

    The online clusterer splits a cluster whose diameter exceeds its
    threshold; this is the reference (quadratic) computation used by the
    tests and by the split check on small clusters.
    """
    sets = [token_set(t) for t in texts]
    worst = 0.0
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            worst = max(worst, jaccard_distance(sets[i], sets[j]))
    return worst
