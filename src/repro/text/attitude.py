"""Heuristic attitude classifier (paper Definition 1, Section V-A2).

The paper computes the attitude score "using a heuristic method based
mainly on the content of the tweet ... (e.g., whether a tweet contains
certain negative words such as 'false', 'fake', 'rumor', 'debunked',
'not true')".  This module reproduces that keyword heuristic, extended
with simple bigram handling so "not true" and "taking the lead" work as
phrases, plus a sports-mode cue list for the College Football trace.
"""

from __future__ import annotations

from repro.core.types import Attitude
from repro.text.tokenize import tokenize

__all__ = [
    "ASSERT_CUES",
    "AttitudeClassifier",
    "DENIAL_CUES",
    "DENIAL_PHRASES",
    "SPORTS_ASSERT_PHRASES",
]

#: Cues that a tweet denies / debunks the claim it mentions.
DENIAL_CUES = frozenset(
    """false fake rumor rumour debunked hoax untrue deny denies denied
    misinformation lie lies lying no nope wrong incorrect""".split()
)

DENIAL_PHRASES = (
    ("not", "true"),
    ("no", "evidence"),
    ("isn't", "true"),
    ("is", "fake"),
    ("stop", "spreading"),
    ("officials", "deny"),
)

#: Cues that a tweet asserts / confirms the claim.
ASSERT_CUES = frozenset(
    """breaking confirmed confirm confirms happening witnessed saw update
    alert reports reporting yes police official officials""".split()
)

#: Score-change cues for sports traces (paper Section V-A2: "taking the
#: lead", "score", "tied" are supportive of a score-change claim).
SPORTS_ASSERT_PHRASES = (
    ("taking", "the"),
    ("takes", "the"),
    ("touchdown",),
    ("field", "goal"),
    ("score",),
    ("scored",),
    ("scores",),
    ("tied",),
)


class AttitudeClassifier:
    """Keyword/phrase attitude scorer.

    Args:
        sports_mode: Also treat score-change phrases as assertions (the
            College Football pre-processing of the paper).
    """

    def __init__(self, sports_mode: bool = False) -> None:
        self.sports_mode = sports_mode

    def classify(self, text: str) -> Attitude:
        """Attitude of ``text``: AGREE, DISAGREE, or NEUTRAL.

        Denial cues dominate assertion cues (a tweet shouting
        "BREAKING: that bomb story is FAKE" is a denial); tweets with no
        cue at all lean AGREE — on Twitter, repeating a claim without
        comment *is* endorsement, which is also how the paper labels the
        football trace ("the rest of the tweets are assigned -1" only
        applies to its score-change semantics).
        """
        tokens = tokenize(text)
        token_set_ = set(tokens)

        denial_hits = len(token_set_ & DENIAL_CUES)
        denial_hits += sum(
            1 for phrase in DENIAL_PHRASES if self._has_phrase(tokens, phrase)
        )
        assert_hits = len(token_set_ & ASSERT_CUES)
        if self.sports_mode:
            assert_hits += sum(
                1
                for phrase in SPORTS_ASSERT_PHRASES
                if self._has_phrase(tokens, phrase)
            )

        if denial_hits > 0 and denial_hits >= assert_hits:
            return Attitude.DISAGREE
        if assert_hits > 0:
            return Attitude.AGREE
        if not tokens:
            return Attitude.NEUTRAL
        return Attitude.AGREE

    @staticmethod
    def _has_phrase(tokens: list[str], phrase: tuple[str, ...]) -> bool:
        n = len(phrase)
        if n == 1:
            return phrase[0] in tokens
        return any(
            tuple(tokens[i : i + n]) == phrase
            for i in range(len(tokens) - n + 1)
        )

    def score(self, text: str) -> int:
        """The numeric attitude score rho in {-1, 0, +1}."""
        return int(self.classify(text))
