"""Lexicon-based polarity analysis (paper §VII, second future-work item).

"We plan to develop accurate classifiers to scale the labeling process
by leveraging more refined techniques from Natural Language Processing
(NLP) and text mining.  For example, the polarity analysis is often
used to automatically decide whether a tweet is expressing negative or
positive feelings towards a claim."

This module adds that refinement as a drop-in replacement for the
keyword :class:`~repro.text.attitude.AttitudeClassifier` ("the SSTD is
designed as a general framework where one can easily update or replace
components ... as a plugin of the system"): a valence lexicon with
negation handling and intensifiers produces a continuous polarity score
in ``[-1, 1]``, which maps onto the attitude alphabet with a neutral
dead-zone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Attitude
from repro.text.tokenize import tokenize

__all__ = [
    "DEFAULT_LEXICON",
    "INTENSIFIERS",
    "NEGATORS",
    "PolarityAnalyzer",
    "PolarityResult",
]

#: Valence lexicon tuned for situational-awareness tweets: positive
#: values indicate endorsement/confirmation of a claim, negative values
#: denial/debunking.  This intentionally differs from generic sentiment
#: ("terrible explosion" endorses the explosion claim) — cue words are
#: about *epistemic* stance, not emotion.
DEFAULT_LEXICON: dict[str, float] = {
    # confirmation cues
    "confirmed": 1.0, "confirm": 1.0, "confirms": 1.0, "breaking": 0.8,
    "happening": 0.7, "witnessed": 0.9, "saw": 0.6, "yes": 0.5,
    "official": 0.6, "officials": 0.4, "police": 0.3, "update": 0.4,
    "alert": 0.5, "true": 0.8, "real": 0.6, "verified": 1.0,
    # denial cues
    "false": -1.0, "fake": -1.0, "hoax": -1.0, "debunked": -1.0,
    "rumor": -0.7, "rumour": -0.7, "untrue": -1.0, "misinformation": -1.0,
    "deny": -0.8, "denies": -0.8, "denied": -0.8, "wrong": -0.6,
    "lie": -0.8, "lies": -0.8, "no": -0.3, "nope": -0.6,
}

#: Tokens that flip the valence of the next scored token.
NEGATORS = frozenset({"not", "never", "no", "isn't", "aren't", "wasn't", "don't"})

#: Tokens that scale the valence of the next scored token.
INTENSIFIERS: dict[str, float] = {
    "very": 1.5, "totally": 1.5, "completely": 1.5, "absolutely": 1.5,
    "definitely": 1.4, "really": 1.3, "so": 1.2,
    "somewhat": 0.6, "kinda": 0.6, "slightly": 0.5, "maybe": 0.5,
    "possibly": 0.5, "probably": 0.8,
}


@dataclass(frozen=True, slots=True)
class PolarityResult:
    """Continuous polarity plus the derived discrete attitude."""

    score: float
    attitude: Attitude
    n_cues: int


class PolarityAnalyzer:
    """Valence-lexicon polarity scorer with negation and intensifiers.

    Args:
        lexicon: token -> valence in ``[-1, 1]``.
        neutral_band: |score| below this maps to
            :attr:`Attitude.NEUTRAL` when no cue fired; tweets with cues
            keep their sign.
        default_attitude: Attitude for cue-less tweets; on Twitter,
            repeating a claim without comment is endorsement, so the
            pipeline default is AGREE (matches the keyword classifier).
    """

    def __init__(
        self,
        lexicon: dict[str, float] | None = None,
        neutral_band: float = 0.1,
        default_attitude: Attitude = Attitude.AGREE,
    ) -> None:
        if neutral_band < 0:
            raise ValueError("neutral_band must be >= 0")
        self.lexicon = dict(DEFAULT_LEXICON if lexicon is None else lexicon)
        for token, valence in self.lexicon.items():
            if not -1.0 <= valence <= 1.0:
                raise ValueError(
                    f"lexicon valence for {token!r} out of [-1, 1]: {valence}"
                )
        self.neutral_band = neutral_band
        self.default_attitude = default_attitude

    def analyze(self, text: str) -> PolarityResult:
        """Score one tweet."""
        tokens = tokenize(text)
        total = 0.0
        n_cues = 0
        negate = False
        intensity = 1.0
        for token in tokens:
            if token in NEGATORS:
                negate = True
                continue
            if token in INTENSIFIERS:
                intensity *= INTENSIFIERS[token]
                continue
            valence = self.lexicon.get(token)
            if valence is not None:
                value = valence * intensity
                if negate:
                    value = -value
                total += value
                n_cues += 1
            # Modifier scope ends at the next content token.
            negate = False
            intensity = 1.0

        if n_cues == 0:
            score = 0.0
            attitude = (
                self.default_attitude if tokens else Attitude.NEUTRAL
            )
        else:
            score = max(-1.0, min(1.0, total / n_cues))
            if abs(score) < self.neutral_band:
                attitude = self.default_attitude
            elif score > 0:
                attitude = Attitude.AGREE
            else:
                attitude = Attitude.DISAGREE
        return PolarityResult(score=score, attitude=attitude, n_cues=n_cues)

    def classify(self, text: str) -> Attitude:
        """Pipeline-compatible attitude interface."""
        return self.analyze(text).attitude

    def score(self, text: str) -> int:
        """Numeric attitude in {-1, 0, +1}."""
        return int(self.classify(text))
