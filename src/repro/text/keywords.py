"""Keyword filtering: the first pre-processing stage (Section V-A2).

"We first used a set of pre-specified keywords to filter out tweets that
are irrelevant to the event of interests" — the same role the Twitter
search queries of Table II play at collection time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.text.tokenize import tokenize

__all__ = [
    "BOSTON_KEYWORDS",
    "FOOTBALL_KEYWORDS",
    "KeywordFilter",
    "PARIS_KEYWORDS",
]


@dataclass(frozen=True)
class KeywordFilter:
    """Keeps tweets containing at least ``min_hits`` of the keywords.

    Keywords are matched as whole lowercase tokens; multi-word keywords
    match when all their tokens appear (order-insensitive, as search
    APIs treat queries).
    """

    keywords: tuple[str, ...]
    min_hits: int = 1

    def __post_init__(self) -> None:
        if not self.keywords:
            raise ValueError("need at least one keyword")
        if self.min_hits < 1:
            raise ValueError("min_hits must be >= 1")

    def _keyword_tokens(self) -> list[frozenset[str]]:
        return [frozenset(tokenize(keyword)) for keyword in self.keywords]

    def matches(self, text: str) -> bool:
        tokens = set(tokenize(text))
        hits = sum(
            1
            for keyword in self._keyword_tokens()
            if keyword and keyword <= tokens
        )
        return hits >= self.min_hits

    def filter(self, texts: Iterable[str]) -> list[str]:
        return [text for text in texts if self.matches(text)]


#: The paper's Table II search keywords, per trace.
BOSTON_KEYWORDS = ("bombing", "marathon", "attack", "boston")
PARIS_KEYWORDS = ("paris", "shooting", "charlie hebdo")
FOOTBALL_KEYWORDS = (
    "fighting irish",
    "buckeyes",
    "notre dame",
    "touchdown",
    "game",
)
