"""Tweet pre-processing: claims, attitudes, uncertainty, independence."""

from repro.text.attitude import AttitudeClassifier
from repro.text.clustering import Cluster, OnlineClaimClusterer
from repro.text.independence import (
    IndependenceConfig,
    IndependenceScorer,
    is_retweet,
)
from repro.text.jaccard import (
    jaccard_distance,
    jaccard_similarity,
    text_distance,
)
from repro.text.keywords import (
    BOSTON_KEYWORDS,
    FOOTBALL_KEYWORDS,
    PARIS_KEYWORDS,
    KeywordFilter,
)
from repro.text.pipeline import RawTweet, TweetPipeline
from repro.text.polarity import PolarityAnalyzer, PolarityResult
from repro.text.tokenize import content_tokens, token_set, tokenize
from repro.text.uncertainty import HEDGE_CORPUS, NaiveBayesHedgeClassifier

__all__ = [
    "AttitudeClassifier",
    "BOSTON_KEYWORDS",
    "Cluster",
    "FOOTBALL_KEYWORDS",
    "HEDGE_CORPUS",
    "IndependenceConfig",
    "IndependenceScorer",
    "KeywordFilter",
    "NaiveBayesHedgeClassifier",
    "OnlineClaimClusterer",
    "PARIS_KEYWORDS",
    "PolarityAnalyzer",
    "PolarityResult",
    "RawTweet",
    "TweetPipeline",
    "content_tokens",
    "is_retweet",
    "jaccard_distance",
    "jaccard_similarity",
    "text_distance",
    "token_set",
    "tokenize",
]
