"""The :class:`Observability` facade and the ambient current recorder.

One object bundles the three observability primitives — a clock, a span
tracer, and a metric registry — plus the master ``enabled`` switch.
Instrumentation sites guard on that attribute::

    if obs.enabled:
        obs.tracer.instant("worker.death", track=name)

so the disabled path costs one attribute check and a branch (verified
by the CI perf-smoke gate).  Tracing is enabled explicitly
(``SSTDSystemConfig.observability=True``) or ambiently via the
``REPRO_TRACE`` environment variable.

Deep engine code (Baum-Welch in :mod:`repro.hmm.base`, claim decoding
in :mod:`repro.core.sstd`) cannot reasonably thread an ``obs`` handle
through every call signature, so this module also keeps a process-wide
*current* recorder: :func:`get_obs` returns it, :func:`using` installs
one for the duration of a run.  The default is a disabled instance, so
library code can always record unconditionally-guarded.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

from repro.obs.clock import Clock, WallClock
from repro.obs.metrics import MetricRegistry
from repro.obs.spans import SpanTracer
from repro.obs.stitch import ClockSync

__all__ = [
    "Observability",
    "env_enabled",
    "get_obs",
    "set_obs",
    "using",
]

#: Environment switch: any of these values turns ambient tracing on.
_TRUTHY = frozenset({"1", "true", "yes", "on"})


def env_enabled(default: bool = False) -> bool:
    """Whether ``REPRO_TRACE`` asks for tracing (unset -> ``default``)."""
    raw = os.environ.get("REPRO_TRACE")
    if raw is None:
        return default
    return raw.strip().lower() in _TRUTHY


class Observability:
    """Clock + tracer + metrics behind one ``enabled`` switch.

    Args:
        clock: Time source shared by the tracer and all duration
            measurements; defaults to a :class:`~repro.obs.clock.WallClock`.
        enabled: Master switch checked by every instrumentation site.
        capacity: Span ring-buffer capacity.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        enabled: bool = True,
        capacity: int = 65536,
    ) -> None:
        self.clock: Clock = clock if clock is not None else WallClock()
        self.enabled = bool(enabled)
        self.tracer = SpanTracer(self.clock, capacity=capacity)
        self.metrics = MetricRegistry()
        # Per-worker clock syncs from the process backend's handshake;
        # populated by ProcessWorkQueue and read by exporters after the
        # queue itself is gone (see repro.obs.stitch).
        self.stitch: dict[str, ClockSync] = {}

    @classmethod
    def from_env(
        cls, clock: Clock | None = None, default: bool = False
    ) -> "Observability":
        """Instance whose ``enabled`` follows ``REPRO_TRACE``."""
        return cls(clock=clock, enabled=env_enabled(default))

    @classmethod
    def resolve(
        cls, flag: bool | None, clock: Clock | None = None
    ) -> "Observability":
        """Explicit flag wins; ``None`` defers to ``REPRO_TRACE``."""
        if flag is None:
            return cls.from_env(clock=clock)
        return cls(clock=clock, enabled=flag)

    @classmethod
    def disabled(cls, clock: Clock | None = None) -> "Observability":
        """A no-op recorder (minimal buffer, ``enabled`` False)."""
        return cls(clock=clock, enabled=False, capacity=1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Observability({state}, clock={self.clock.kind}, "
            f"events={self.tracer.recorded})"
        )


#: Process-wide current recorder; disabled until a run installs one.
_current: Observability = Observability.disabled()


def get_obs() -> Observability:
    """The ambient recorder engine code records through."""
    return _current


def set_obs(obs: Observability) -> Observability:
    """Install ``obs`` as the ambient recorder; returns the previous one."""
    global _current
    previous = _current
    _current = obs
    return previous


@contextlib.contextmanager
def using(obs: Observability) -> Iterator[Observability]:
    """Scope ``obs`` as the ambient recorder for a ``with`` block.

    The ambient recorder is process-global (not thread-local) by
    design: worker *threads* of a run must see the run's recorder.
    Concurrent runs with different recorders in one process would race;
    the system layer runs one deployment at a time.
    """
    previous = set_obs(obs)
    try:
        yield obs
    finally:
        set_obs(previous)
