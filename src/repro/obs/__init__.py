"""``repro.obs`` — unified tracing + metrics for the SSTD system.

The paper's feedback controller exists because the system observes
itself (Section IV-C: execution times monitored at 1 Hz steer
priorities and pool size).  This package is that measurement channel as
a first-class, dependency-free substrate:

- :mod:`repro.obs.clock` — one ``Clock`` protocol over virtual
  (simulation) and wall time, enforced by lint rule SSTD011;
- :mod:`repro.obs.spans` — ring-buffered span tracer (nested timed
  spans + instant markers, one track per worker/job);
- :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms
  with picklable snapshots for cross-process merge;
- :mod:`repro.obs.export` — JSONL and Perfetto-loadable Chrome
  trace-event exporters;
- :mod:`repro.obs.runtime` — the :class:`Observability` facade and the
  ambient recorder used by deep engine code.

Enable via ``SSTDSystemConfig(observability=True)``, ``REPRO_TRACE=1``,
or ``repro-cli trace``.
"""

from repro.obs.clock import Clock, ManualClock, VirtualClock, WallClock
from repro.obs.export import (
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    BYTE_BUCKETS,
    DEFAULT_BUCKETS,
    HistogramSnapshot,
    MetricRegistry,
    MetricsSnapshot,
    nearest_rank,
    percentile,
)
from repro.obs.runtime import Observability, env_enabled, get_obs, set_obs, using
from repro.obs.spans import SpanEvent, SpanTracer
from repro.obs.stitch import ClockSync, rebase_events, stitch_metadata

__all__ = [
    "BYTE_BUCKETS",
    "Clock",
    "ClockSync",
    "DEFAULT_BUCKETS",
    "HistogramSnapshot",
    "ManualClock",
    "MetricRegistry",
    "MetricsSnapshot",
    "Observability",
    "SpanEvent",
    "SpanTracer",
    "VirtualClock",
    "WallClock",
    "chrome_trace",
    "env_enabled",
    "get_obs",
    "jsonl_lines",
    "nearest_rank",
    "percentile",
    "rebase_events",
    "set_obs",
    "stitch_metadata",
    "using",
    "write_chrome_trace",
    "write_jsonl",
]
