"""Cross-process span stitching: one timeline from many clocks.

Worker *processes* record spans against their own ``WallClock``
(``time.perf_counter`` — monotonic seconds from an arbitrary, per-process
epoch), so their raw timestamps are meaningless on the master's
timeline.  This module carries the clock-domain translation:

- **Handshake.**  At spawn the master performs an NTP-style exchange
  with each worker: it sends its own time ``t0`` down the worker's
  inbox, the worker replies with its local reading ``w1``, and the
  master stamps ``t1`` on receipt.  The worker's reading happened at
  some master time inside ``[t0, t1]``, which bounds the clock offset
  ``theta = worker_clock - master_clock`` to ``[w1 - t1, w1 - t0]``.

- **Rebase.**  :meth:`ClockSync.rebase` maps a worker timestamp onto the
  master clockline.  It deliberately uses the *lower* offset bound
  (``w1 - t1``) rather than the midpoint estimate: the midpoint halves
  the expected error but can shift a worker event *earlier* than the
  master event that caused it, breaking happens-before in the merged
  timeline.  The lower bound can only shift worker events later (by at
  most the round trip), so a rebased worker span always starts at or
  after the master's dispatch instant — causality reads correctly in
  Perfetto, at the cost of a small, bounded late bias reported as
  :attr:`ClockSync.uncertainty`.

- **Stitch quality.**  Each sync carries the midpoint ``offset``, the
  round-trip ``uncertainty`` (half the RTT), and the count of spans the
  worker's ring buffer dropped; exporters embed all three so a merged
  timeline is never silently lossy or silently skewed.

On Linux with the ``fork`` start method both processes read the same
``CLOCK_MONOTONIC``, so the true offset is ~0 and the handshake merely
certifies it; the protocol exists so the ``spawn`` method (fresh epoch)
and future remote workers stitch identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Mapping

from repro.obs.spans import SpanEvent

__all__ = [
    "ClockSync",
    "rebase_events",
    "stitch_metadata",
]


@dataclass(frozen=True, slots=True)
class ClockSync:
    """Result of one master↔worker clock-offset handshake.

    Attributes:
        worker: Worker name the sync belongs to (one sync per spawn).
        master_sent: Master clock when the probe entered the inbox (t0).
        worker_reply: Worker clock when it answered the probe (w1).
        master_received: Master clock when the reply surfaced (t1).
        dropped_spans: Spans evicted by the worker's ring buffer across
            the worker's lifetime (filled in as results arrive).
    """

    worker: str
    master_sent: float
    worker_reply: float
    master_received: float
    dropped_spans: int = 0

    def __post_init__(self) -> None:
        if self.master_received < self.master_sent:
            raise ValueError(
                f"handshake reply for {self.worker!r} arrived "
                f"({self.master_received}) before it was sent "
                f"({self.master_sent})"
            )

    @property
    def rtt(self) -> float:
        """Round-trip time of the handshake exchange in seconds."""
        return self.master_received - self.master_sent

    @property
    def offset(self) -> float:
        """Midpoint estimate of ``worker_clock - master_clock``."""
        return self.worker_reply - (self.master_sent + self.master_received) / 2.0

    @property
    def uncertainty(self) -> float:
        """Half the round trip: the offset estimate's error bound."""
        return self.rtt / 2.0

    @property
    def rebase_offset(self) -> float:
        """The causality-safe offset bound actually subtracted on rebase.

        ``w1 - t1`` is the smallest offset consistent with the exchange,
        so subtracting it can only move worker events *later* on the
        master timeline — never before the dispatch that caused them.
        """
        return self.worker_reply - self.master_received

    def rebase(self, worker_time: float) -> float:
        """Map a worker-clock timestamp onto the master clockline."""
        return worker_time - self.rebase_offset

    def as_dict(self) -> dict[str, object]:
        """JSON-ready stitch-quality record for trace metadata."""
        return {
            "offset": self.offset,
            "rtt": self.rtt,
            "uncertainty": self.uncertainty,
            "rebase_offset": self.rebase_offset,
            "dropped_spans": self.dropped_spans,
        }


def rebase_events(
    events: Iterable[SpanEvent],
    sync: ClockSync,
) -> Iterator[SpanEvent]:
    """Rebase worker-recorded events onto the master clockline.

    Timestamps are shifted by :attr:`ClockSync.rebase_offset`; tracks
    are rewritten so every event lands on the worker's own timeline row
    (``main`` — the worker-local default — becomes the worker name,
    anything else is prefixed with it).  Sequence numbers are left
    untouched; the caller re-records through the master tracer, which
    assigns fresh ones.
    """
    for event in events:
        track = (
            sync.worker
            if event.track == "main"
            else f"{sync.worker}/{event.track}"
        )
        yield replace(
            event,
            start=sync.rebase(event.start),
            end=sync.rebase(event.end),
            track=track,
        )


def stitch_metadata(
    syncs: Mapping[str, ClockSync],
) -> dict[str, dict[str, object]]:
    """Per-worker stitch-quality block for Chrome-trace ``otherData``."""
    return {name: syncs[name].as_dict() for name in sorted(syncs)}
