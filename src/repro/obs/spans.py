"""Span tracer: nested timed spans and instant events on a ring buffer.

A *span* is a named interval on a *track* (one track per worker, one
per job, one for the master/control plane); an *instant* is a
zero-duration marker (worker death, retry, poison pill).  Events carry
a small attribute bag and a global sequence number, so exports are
totally ordered even when the clock is virtual and many events share a
timestamp.

The buffer is a fixed-capacity ring: a run that emits more events than
``capacity`` keeps the most recent ones and counts the drops, so
tracing can stay on in long runs without unbounded memory.  Recording
is thread-safe (the thread-backed Work Queue records from worker
threads); cross-*process* events are recorded on per-process tracers and
stitched onto the master timeline after a clock-offset handshake (see
:mod:`repro.obs.stitch` and :mod:`repro.workqueue.process`).
"""

from __future__ import annotations

import collections
import contextlib
import threading
from dataclasses import dataclass
from typing import Iterator

from repro.obs.clock import Clock

__all__ = [
    "SpanEvent",
    "SpanTracer",
]

#: Event kinds: a timed interval or a point-in-time marker.
_KINDS = ("span", "instant")


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """One recorded event.

    Attributes:
        name: Event name, dotted (``wq.task``, ``worker.death``).
        kind: ``"span"`` (timed interval) or ``"instant"`` (marker).
        start: Start time in clock seconds.
        end: End time; equals ``start`` for instants.
        track: Display track — worker name, ``job:<id>``, ``master``...
        seq: Global sequence number (total order of recording).
        attrs: Sorted ``(key, value)`` pairs; values must be
            JSON-serializable scalars/strings for export.
    """

    name: str
    kind: str
    start: float
    end: float
    track: str
    seq: int
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def attr_dict(self) -> dict[str, object]:
        return dict(self.attrs)

    def as_dict(self) -> dict[str, object]:
        """JSONL-ready representation."""
        return {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "track": self.track,
            "seq": self.seq,
            "attrs": self.attr_dict(),
        }


def _freeze_attrs(attrs: dict[str, object]) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(attrs.items()))


class SpanTracer:
    """Records :class:`SpanEvent` records against one :class:`Clock`."""

    def __init__(self, clock: Clock, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.clock = clock
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: collections.deque = collections.deque(  # guarded-by: _lock
            maxlen=capacity
        )
        self._seq = 0  # guarded-by: _lock
        self._dropped = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        track: str = "main",
        **attrs: object,
    ) -> None:
        """Record a completed interval with explicit timestamps.

        This is the entry point for the simulated master, which learns a
        task's ``started_at``/``finished_at`` from the completion
        callback rather than bracketing the work itself.
        """
        if end < start:
            raise ValueError(f"span {name!r} ends ({end}) before it starts ({start})")
        self._append(name, "span", start, end, track, attrs)

    def instant(self, name: str, track: str = "main", **attrs: object) -> None:
        """Record a point-in-time marker at the clock's current time."""
        now = self.clock.now()
        self._append(name, "instant", now, now, track, attrs)

    def record_instant(
        self, name: str, at: float, track: str = "main", **attrs: object
    ) -> None:
        """Record a marker with an explicit timestamp.

        The entry point for cross-process stitching: a worker instant
        rebased onto this tracer's clockline is re-recorded here, with
        its original time preserved and a fresh sequence number.
        """
        self._append(name, "instant", at, at, track, attrs)

    @contextlib.contextmanager
    def span(
        self, name: str, track: str = "main", **attrs: object
    ) -> Iterator[None]:
        """Context manager timing the enclosed block on this clock."""
        start = self.clock.now()
        try:
            yield
        finally:
            self._append(name, "span", start, self.clock.now(), track, attrs)

    def _append(
        self,
        name: str,
        kind: str,
        start: float,
        end: float,
        track: str,
        attrs: dict[str, object],
    ) -> None:
        frozen = _freeze_attrs(attrs)
        with self._lock:
            seq = self._seq
            self._seq += 1
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(
                SpanEvent(
                    name=name,
                    kind=kind,
                    start=start,
                    end=end,
                    track=track,
                    seq=seq,
                    attrs=frozen,
                )
            )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def events(self) -> list[SpanEvent]:
        """Snapshot of buffered events in recording order."""
        with self._lock:
            return list(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer so far."""
        with self._lock:
            return self._dropped

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including evicted ones)."""
        with self._lock:
            return self._seq

    def clear(self) -> None:
        """Drop buffered events (sequence numbers keep counting up)."""
        with self._lock:
            self._events.clear()
            self._dropped = 0
