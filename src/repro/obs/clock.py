"""The one clock abstraction of the observability layer.

Every timestamp in a trace or metric sample flows through a
:class:`Clock`, so the same instrumentation code runs against the
discrete-event simulation's *virtual* clock and against real *wall*
time.  This is what lets :class:`repro.workqueue.master.WorkQueueMaster`
(simulated) and :class:`repro.workqueue.process.ProcessWorkQueue` (real
processes) emit identical event schemas — only the clock differs.

Lint rule SSTD011 enforces the flip side: runtime packages
(``repro.workqueue``, ``repro.system``, ``repro.cluster``) never call
``time.time()`` / ``time.monotonic()`` / ``time.perf_counter()``
directly; they read a ``Clock`` instead.  That keeps timing mockable in
tests and keeps virtual-time code from accidentally mixing clock
domains.

Clock values are *monotonic seconds from an arbitrary epoch* — good for
durations and ordering, not calendar time.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = [
    "Clock",
    "ManualClock",
    "VirtualClock",
    "WallClock",
]


@runtime_checkable
class Clock(Protocol):
    """Monotonic time source; ``kind`` names the clock domain."""

    kind: str

    def now(self) -> float:
        """Current time in seconds from an arbitrary, fixed epoch."""
        ...


class WallClock:
    """Real elapsed time (``time.perf_counter``: monotonic, high-res)."""

    kind = "wall"

    def now(self) -> float:
        return time.perf_counter()


class VirtualClock:
    """Reads virtual time off any object exposing a ``now`` attribute.

    Duck-typed on purpose: :class:`repro.cluster.simulation.Simulator`
    keeps its clock in a plain ``now`` float, and ``repro.obs`` stays
    dependency-free by not importing it.
    """

    kind = "virtual"

    def __init__(self, source: object) -> None:
        if not hasattr(source, "now"):
            raise TypeError(
                f"{type(source).__name__} has no 'now' attribute to read "
                "virtual time from"
            )
        self._source = source

    def now(self) -> float:
        return float(self._source.now)  # type: ignore[attr-defined]


class ManualClock:
    """A clock tests advance by hand; starts at ``start``."""

    kind = "manual"

    def __init__(self, start: float = 0.0) -> None:
        self.now_value = float(start)

    def now(self) -> float:
        return self.now_value

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds; returns the new time."""
        if delta < 0:
            raise ValueError("clocks only move forward; delta must be >= 0")
        self.now_value += delta
        return self.now_value
