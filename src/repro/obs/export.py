"""Trace exporters: JSONL and Chrome trace-event format.

Two output shapes for the same :class:`repro.obs.spans.SpanEvent` list:

- **JSONL** — one event per line, schema-stable, easy to grep and to
  post-process with pandas/jq;
- **Chrome trace-event JSON** — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``: one timeline track
  per event ``track`` (workers, jobs, master, control plane), complete
  (``ph: "X"``) events for spans, instant (``ph: "i"``) events for
  markers, and the registry's metrics embedded under ``otherData`` so a
  single file carries the whole run.

Determinism: events are ordered by global sequence number and track ids
are assigned in sorted track-name order, so the same run produces a
byte-identical export — which is what the golden-file test pins down.
Timestamps are converted from clock seconds to integer microseconds
(the trace-event unit); on the virtual clock these are exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.obs.metrics import MetricsSnapshot
from repro.obs.spans import SpanEvent

__all__ = [
    "chrome_trace",
    "jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
]

_PID = 1  # single logical process; tracks are "threads" in the viewer


def jsonl_lines(events: Iterable[SpanEvent]) -> Iterator[str]:
    """One compact JSON object per event, in recording order."""
    for event in events:
        yield json.dumps(event.as_dict(), sort_keys=True, separators=(",", ":"))


def write_jsonl(events: Iterable[SpanEvent], path: Path | str) -> int:
    """Write events as JSONL; returns the number of lines written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for line in jsonl_lines(events):
            handle.write(line + "\n")
            count += 1
    return count


def _micros(seconds: float) -> int:
    return int(round(seconds * 1_000_000))


def chrome_trace(
    events: Sequence[SpanEvent],
    metrics: MetricsSnapshot | None = None,
    clock_kind: str = "",
    dropped: int = 0,
    stitch: Mapping[str, object] | None = None,
) -> dict:
    """Build a Chrome trace-event document from recorded events.

    Args:
        events: Events to export (recording order; re-sorted by ``seq``).
        metrics: Optional registry snapshot embedded as ``otherData``.
        clock_kind: Clock domain label (``wall``/``virtual``) recorded in
            the document metadata.
        dropped: Events evicted by the tracer's ring buffer; recorded as
            ``otherData.dropped_events`` so a truncated timeline is
            never silently misleading.
        stitch: Per-worker clock-sync quality blocks (offset, round-trip
            uncertainty, dropped worker spans — see
            :func:`repro.obs.stitch.stitch_metadata`); embedded as
            ``otherData.stitch`` when non-empty.
    """
    ordered = sorted(events, key=lambda e: e.seq)
    tracks = sorted({event.track for event in ordered})
    tids = {track: index + 1 for index, track in enumerate(tracks)}

    trace_events: list[dict] = []
    for track in tracks:
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
    for event in ordered:
        record: dict = {
            "name": event.name,
            "cat": "repro",
            "pid": _PID,
            "tid": tids[event.track],
            "ts": _micros(event.start),
            "args": event.attr_dict(),
        }
        if event.kind == "instant":
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped marker
        else:
            record["ph"] = "X"
            record["dur"] = _micros(event.end) - _micros(event.start)
        trace_events.append(record)

    document: dict = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "clock": clock_kind,
            "n_events": len(ordered),
            "dropped_events": dropped,
        },
    }
    if metrics is not None:
        document["otherData"]["metrics"] = metrics.as_dict()
    if stitch:
        document["otherData"]["stitch"] = dict(stitch)
    return document


def write_chrome_trace(
    events: Sequence[SpanEvent],
    path: Path | str,
    metrics: MetricsSnapshot | None = None,
    clock_kind: str = "",
    dropped: int = 0,
    stitch: Mapping[str, object] | None = None,
) -> Path:
    """Write the Chrome trace-event JSON document; returns the path."""
    path = Path(path)
    document = chrome_trace(
        events,
        metrics=metrics,
        clock_kind=clock_kind,
        dropped=dropped,
        stitch=stitch,
    )
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
