"""Thread-safe metric registry: counters, gauges, fixed-bucket histograms.

The registry is the shared numerical state of the observability layer:
the Work Queue master keeps queue-depth gauges here, workers count
completed tasks, the control loop records error samples, and the SSTD
engine tracks Baum-Welch convergence.  Two design constraints shape it:

- **Thread safety with SSTD007/008 discipline.**  All mutable state is
  guarded by one lock; reads *snapshot under the lock* into fresh plain
  containers and serialization happens outside it, so no guarded
  container escapes and nothing blocks while the lock is held.
- **Picklable snapshots.**  :class:`MetricsSnapshot` is a frozen
  dataclass of plain dicts/tuples, so a worker *process* can snapshot
  its local registry, ship it across the pickle boundary in a
  :class:`repro.workqueue.local.LocalResult`, and the master merges it
  with :meth:`MetricRegistry.merge`.

Histograms use fixed, explicit bucket boundaries (Prometheus-style), so
merging across processes is exact: same bounds, add the counts.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "BYTE_BUCKETS",
    "DEFAULT_BUCKETS",
    "HistogramSnapshot",
    "MetricRegistry",
    "MetricsSnapshot",
    "nearest_rank",
    "percentile",
]

#: Default histogram boundaries in seconds: spans micro-tasks (sub-ms)
#: through long drains.  Samples above the last bound land in the
#: overflow bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)

#: Histogram boundaries in bytes, for payload/result-size series
#: (``wq.payload_bytes`` / ``wq.result_bytes``): spans tiny zero-copy
#: specs (hundreds of bytes) through multi-megabyte pickled stacks.
BYTE_BUCKETS: tuple[float, ...] = (
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
)


def nearest_rank(count: int, q: float) -> int:
    """1-based nearest rank of the ``q``-th percentile among ``count`` samples.

    The one place the rank arithmetic lives: :func:`percentile` (exact,
    over raw samples), :meth:`HistogramSnapshot.quantile`
    (bucket-resolution), and :class:`repro.system.monitor.MonitorSummary`
    (through :func:`percentile`) all agree on it.  ``q=0`` maps to rank
    1 (the minimum) and ``q=100`` to rank ``count`` (the maximum).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if count < 1:
        raise ValueError(f"need at least one sample, got {count}")
    return min(count, max(1, math.ceil(q * count / 100.0)))


def percentile(values: list[float] | tuple[float, ...], q: float) -> float:
    """Nearest-rank percentile of raw samples; 0.0 for an empty list.

    ``q`` is in [0, 100].  Nearest-rank keeps the result an actual
    sample (p50 of [1, 2, 3] is 2), which is what operators expect from
    queue-depth and latency summaries.
    """
    if not values:
        # Validate q even on the empty shortcut so callers get the same
        # contract regardless of sample count.
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        return 0.0
    ordered = sorted(values)
    return float(ordered[nearest_rank(len(ordered), q) - 1])


@dataclass(frozen=True, slots=True)
class HistogramSnapshot:
    """Immutable, picklable state of one histogram.

    ``counts`` has ``len(bounds) + 1`` entries; the last is the
    overflow bucket for samples above every bound.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    total: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate; 0.0 when empty.

        Returns the upper bound of the bucket holding the q-th sample
        (clamped into [min, max]); overflow-bucket hits return ``max``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile q must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = nearest_rank(self.count, q)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index >= len(self.bounds):
                    return self.max
                return min(max(self.bounds[index], self.min), self.max)
        return self.max

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Exact merge of two snapshots with identical bounds."""
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Point-in-time copy of a registry — plain data, fully picklable."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)

    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def gauge(self, name: str, default: float | None = None) -> float | None:
        return self.gauges.get(name, default)

    def histogram(self, name: str) -> HistogramSnapshot | None:
        return self.histograms.get(name)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by exporters and the CLI)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: {
                    "bounds": list(snap.bounds),
                    "counts": list(snap.counts),
                    "count": snap.count,
                    "total": snap.total,
                    "min": snap.min,
                    "max": snap.max,
                }
                for name, snap in sorted(self.histograms.items())
            },
        }


class _HistogramState:
    """Mutable accumulator behind one histogram (lives under the lock)."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for k, bound in enumerate(self.bounds):
            if value <= bound:
                index = k
                break
        self.counts[index] += 1
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.total += value

    def absorb(self, snap: HistogramSnapshot) -> None:
        if snap.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {snap.bounds}"
            )
        if snap.count == 0:
            return
        for k, add in enumerate(snap.counts):
            self.counts[k] += add
        if self.count == 0:
            self.min, self.max = snap.min, snap.max
        else:
            self.min = min(self.min, snap.min)
            self.max = max(self.max, snap.max)
        self.count += snap.count
        self.total += snap.total

    def freeze(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(self.counts),
            count=self.count,
            total=self.total,
            min=self.min,
            max=self.max,
        )


class MetricRegistry:
    """Named counters, gauges, and histograms behind one lock.

    Metric names are plain dotted strings (``wq.queue_depth``); the
    registry creates a metric on first use, so instrumentation sites
    never need registration boilerplate.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}  # guarded-by: _lock
        self._gauges: dict[str, float] = {}  # guarded-by: _lock
        self._histograms: dict[str, _HistogramState] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        """Record one sample into histogram ``name``.

        ``bounds`` applies on first use; later calls reuse the existing
        boundaries (histogram bounds are immutable once created).
        """
        with self._lock:
            state = self._histograms.get(name)
            if state is None:
                state = _HistogramState(tuple(bounds))
                self._histograms[name] = state
            state.observe(value)

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (worker) snapshot into this registry.

        Counters and histograms add; gauges take the snapshot's value
        (last write wins — gauges are instantaneous readings).
        """
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in snapshot.gauges.items():
                self._gauges[name] = value
            for name, hist in snapshot.histograms.items():
                state = self._histograms.get(name)
                if state is None:
                    state = _HistogramState(hist.bounds)
                    self._histograms[name] = state
                state.absorb(hist)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def counter(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def gauge(self, name: str, default: float | None = None) -> float | None:
        with self._lock:
            return self._gauges.get(name, default)

    def histogram(self, name: str) -> HistogramSnapshot | None:
        """Frozen snapshot of one histogram; ``None`` if never observed.

        Cheaper than :meth:`snapshot` for control-loop consumers (the
        latency-mode DTM reads ``wq.task_seconds`` every sample period)
        because only the requested series is copied under the lock.
        """
        with self._lock:
            state = self._histograms.get(name)
            return state.freeze() if state is not None else None

    def snapshot(self) -> MetricsSnapshot:
        """Consistent point-in-time copy; safe to pickle or serialize.

        Copies are taken under the lock; the (potentially slow)
        serialization of the returned snapshot happens in the caller,
        outside it.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                name: state.freeze()
                for name, state in self._histograms.items()
            }
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def merge_mapping(self, snapshots: Mapping[str, MetricsSnapshot]) -> None:
        """Merge several named snapshots (convenience for tests/tools)."""
        for snap in snapshots.values():
            self.merge(snap)
