"""Plain-text rendering of truth-discovery outputs.

Terminal-friendly visualizations with zero plotting dependencies:
truth-timeline strips, ACS sparklines, hit-rate curves, and histogram
bars.  The CLI and examples use these to make runs legible; benchmarks
keep their own tabular formats.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.types import TruthEstimate, TruthTimeline, TruthValue

__all__ = [
    "bar_chart",
    "estimate_strip",
    "hit_rate_table",
    "side_by_side",
    "sparkline",
    "timeline_strip",
    "truth_strip",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Unicode sparkline of a numeric series; NaN renders as a space.

    Example:
        >>> sparkline([0.0, 0.5, 1.0])
        '▁▄█'
    """
    cleaned = [v for v in values if not math.isnan(v)]
    if not cleaned:
        return " " * len(values)
    lo, hi = min(cleaned), max(cleaned)
    span = hi - lo
    chars = []
    for value in values:
        if math.isnan(value):
            chars.append(" ")
        elif span < 1e-12:
            chars.append(_SPARK_LEVELS[3])
        else:
            index = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
            chars.append(_SPARK_LEVELS[index])
    line = "".join(chars)
    if width is not None and len(line) > width:
        stride = len(line) / width
        line = "".join(line[int(k * stride)] for k in range(width))
    return line


def truth_strip(values: Sequence[TruthValue]) -> str:
    """Compact strip of a truth sequence: '█' = TRUE, '·' = FALSE.

    Example:
        >>> truth_strip([TruthValue.FALSE, TruthValue.TRUE])
        '·█'
    """
    return "".join(
        "█" if value is TruthValue.TRUE else "·" for value in values
    )


def estimate_strip(estimates: Sequence[TruthEstimate]) -> str:
    """Truth strip of a (time-ordered) estimate series."""
    ordered = sorted(estimates, key=lambda e: e.timestamp)
    return truth_strip([e.value for e in ordered])


def timeline_strip(
    timeline: TruthTimeline, start: float, end: float, width: int = 60
) -> str:
    """Ground-truth strip sampled on a uniform grid over ``[start, end]``."""
    if width < 1:
        raise ValueError("width must be >= 1")
    if end <= start:
        raise ValueError("end must be > start")
    values = [
        timeline.value_at(start + (end - start) * (k + 0.5) / width)
        for k in range(width)
    ]
    return truth_strip(values)


def side_by_side(
    estimates: Sequence[TruthEstimate],
    timeline: TruthTimeline,
    width: int = 60,
) -> str:
    """Two labelled strips: estimated vs ground truth, time-aligned."""
    ordered = sorted(estimates, key=lambda e: e.timestamp)
    if not ordered:
        raise ValueError("need at least one estimate")
    start, end = ordered[0].timestamp, ordered[-1].timestamp
    if end <= start:
        end = start + 1.0
    # Sample estimates on the same grid (carry latest forward).
    sampled: list[TruthValue] = []
    cursor = 0
    current = ordered[0].value
    for k in range(width):
        t = start + (end - start) * (k + 0.5) / width
        while cursor < len(ordered) and ordered[cursor].timestamp <= t:
            current = ordered[cursor].value
            cursor += 1
        sampled.append(current)
    return (
        f"estimate {truth_strip(sampled)}\n"
        f"truth    {timeline_strip(timeline, start, end, width)}"
    )


def bar_chart(
    rows: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bars, scaled to the max value.

    Example:
        >>> print(bar_chart({"a": 2.0, "b": 1.0}, width=4))
        a ████ 2
        b ██   1
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if not rows:
        return ""
    label_width = max(len(label) for label in rows)
    peak = max(rows.values())
    lines = []
    for label, value in rows.items():
        if value < 0:
            raise ValueError("bar_chart values must be >= 0")
        filled = 0 if peak <= 0 else round(value / peak * width)
        bar = "█" * filled + " " * (width - filled)
        formatted = f"{value:g}{unit}"
        lines.append(f"{label:<{label_width}} {bar} {formatted}")
    return "\n".join(lines)


def hit_rate_table(
    curves: Mapping[str, Sequence[float]],
    deadlines: Sequence[float],
) -> str:
    """Figure-6-style hit-rate table with inline bars."""
    lines = [
        f"{'deadline':>10} " + " ".join(f"{name:>12}" for name in curves)
    ]
    for k, deadline in enumerate(deadlines):
        cells = []
        for name in curves:
            rate = curves[name][k]
            if not 0.0 <= rate <= 1.0:
                raise ValueError("hit rates must be in [0, 1]")
            cells.append(f"{rate:>11.0%} ")
        lines.append(f"{deadline:>9.3g}s " + " ".join(cells))
    return "\n".join(lines)
