"""Command-line interface for the SSTD reproduction.

Subcommands mirror the workflows of the examples and benchmarks:

- ``repro-cli generate`` — synthesize a scenario trace to a JSONL file;
- ``repro-cli discover`` — run a truth-discovery algorithm over a trace
  and print (or save) the per-claim verdicts;
- ``repro-cli evaluate`` — compare one or more algorithms against the
  trace's ground truth and print the paper-style metrics table;
- ``repro-cli stats`` — print a trace's Table-II-style statistics;
- ``repro-cli replay`` — stream a trace through the streaming engine at
  a chosen rate and report flips as they are detected;
- ``repro-cli trace`` — run a traced batch of the distributed system
  over a trace file and export a Perfetto-loadable Chrome trace (see
  :mod:`repro.obs`);
- ``repro-cli replay-controller`` — re-run a recorded PID trajectory
  offline, optionally with modified gains (see
  :mod:`repro.control.feedback`);
- ``repro-cli lint`` — run the project's SSTD static-analysis rules
  (see :mod:`repro.devtools.lint`); exits non-zero on findings.

Install the package and run ``python -m repro.cli --help``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.baselines import EvaluationGrid, make_algorithm
from repro.baselines.registry import ALGORITHM_FACTORIES, PAPER_TABLE_METHODS
from repro.core import evaluate_estimates, format_results_table
from repro.core.types import TruthValue
from repro.streams import SCENARIOS, StreamReplayer, Trace, generate_trace
from repro.streams.generator import GeneratorConfig

__all__ = [
    "build_parser",
    "main",
]


def _add_generate(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "generate", help="synthesize a scenario trace to JSONL"
    )
    parser.add_argument("scenario", choices=sorted(SCENARIOS))
    parser.add_argument("output", type=Path, help="output .jsonl path")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's full volume")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--no-text", action="store_true",
                        help="skip tweet text (smaller, faster)")
    parser.set_defaults(func=_run_generate)


def _run_generate(args: argparse.Namespace) -> int:
    spec = SCENARIOS[args.scenario]()
    if args.scale != 1.0:
        spec = spec.scaled(args.scale)
    trace = generate_trace(
        spec, seed=args.seed,
        config=GeneratorConfig(with_text=not args.no_text),
    )
    trace.save(args.output)
    stats = trace.stats()
    print(
        f"wrote {args.output}: {stats.n_reports:,} reports, "
        f"{stats.n_sources:,} sources, {stats.n_claims} claims"
    )
    return 0


def _add_discover(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "discover", help="run truth discovery over a trace"
    )
    parser.add_argument("trace", type=Path, help="trace .jsonl path")
    parser.add_argument("--method", default="SSTD",
                        choices=sorted(ALGORITHM_FACTORIES))
    parser.add_argument("--step", type=float, default=1800.0,
                        help="evaluation grid step in seconds")
    parser.add_argument("--limit", type=int, default=20,
                        help="claims to print (0 = all)")
    parser.add_argument("--output", type=Path, default=None,
                        help="also save estimates as JSONL")
    parser.set_defaults(func=_run_discover)


def _run_discover(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    if not trace.reports:
        print("trace has no reports", file=sys.stderr)
        return 1
    grid = EvaluationGrid(trace.start, trace.end, step=args.step)
    algorithm = make_algorithm(args.method)
    estimates = algorithm.discover(trace.reports, grid)
    if args.output is not None:
        from repro.core import save_estimates

        count = save_estimates(estimates, args.output)
        print(f"saved {count} estimates to {args.output}")

    final: dict[str, TruthValue] = {}
    flips: dict[str, int] = {}
    previous: dict[str, TruthValue] = {}
    for estimate in estimates:
        if estimate.claim_id in previous and (
            previous[estimate.claim_id] != estimate.value
        ):
            flips[estimate.claim_id] = flips.get(estimate.claim_id, 0) + 1
        previous[estimate.claim_id] = estimate.value
        final[estimate.claim_id] = estimate.value

    print(f"{args.method}: {len(final)} claims decoded")
    shown = sorted(final)
    if args.limit:
        shown = shown[: args.limit]
    for claim_id in shown:
        text = trace.claims[claim_id].text if claim_id in trace.claims else ""
        print(
            f"  {claim_id:<14} {final[claim_id].name:<6} "
            f"flips={flips.get(claim_id, 0):<3} {text[:48]}"
        )
    if args.limit and len(final) > args.limit:
        print(f"  ... and {len(final) - args.limit} more")
    return 0


def _add_evaluate(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "evaluate", help="score algorithms against a trace's ground truth"
    )
    parser.add_argument("trace", type=Path)
    parser.add_argument(
        "--methods", nargs="+", default=list(PAPER_TABLE_METHODS),
        choices=sorted(ALGORITHM_FACTORIES),
    )
    parser.add_argument("--step", type=float, default=1800.0)
    parser.set_defaults(func=_run_evaluate)


def _run_evaluate(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    if not trace.timelines:
        print("trace has no ground-truth timelines", file=sys.stderr)
        return 1
    grid = EvaluationGrid(trace.start, trace.end, step=args.step)
    results = []
    for method in args.methods:
        algorithm = make_algorithm(method)
        estimates = algorithm.discover(trace.reports, grid)
        results.append(
            evaluate_estimates(method, estimates, trace.timelines)
        )
    print(format_results_table(results, title=f"Results — {trace.name}"))
    return 0


def _add_stats(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "stats", help="print Table-II-style statistics of a trace"
    )
    parser.add_argument("trace", type=Path)
    parser.set_defaults(func=_run_stats)


def _run_stats(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    stats = trace.stats()
    for key, value in stats.as_row().items():
        print(f"{key:>22}: {value}")
    transitions = sum(
        len(t.transition_times()) for t in trace.timelines.values()
    )
    print(f"{'truth transitions':>22}: {transitions}")
    retweets = sum(1 for r in trace.reports if r.is_retweet)
    print(f"{'retweets':>22}: {retweets}")
    from repro.streams import validate_trace

    validation = validate_trace(trace)
    print(f"{'validation':>22}: {validation.summary()}")
    return 0 if validation.ok else 1


def _add_replay(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "replay", help="stream a trace through StreamingSSTD"
    )
    parser.add_argument("trace", type=Path)
    parser.add_argument("--speed", type=float, default=200.0,
                        help="reports per second")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="replay seconds")
    parser.set_defaults(func=_run_replay)


def _run_replay(args: argparse.Namespace) -> int:
    from repro.core import SSTDConfig, StreamingSSTD
    from repro.core.acs import ACSConfig

    trace = Trace.load(args.trace)
    replayer = StreamReplayer(trace, speed=args.speed, duration=args.duration)
    engine = StreamingSSTD(
        SSTDConfig(acs=ACSConfig(window=6.0, step=2.0), min_observations=4),
        retrain_every=10,
    )
    current: dict[str, TruthValue] = {}
    n_flips = 0
    for batch in replayer.batches():
        for report in batch.reports:
            engine.push(report)
        for estimate in engine.tick(batch.arrival_time):
            old = current.get(estimate.claim_id)
            if old is not None and old != estimate.value:
                n_flips += 1
                print(
                    f"t={batch.arrival_time:6.1f}s  {estimate.claim_id} "
                    f"-> {estimate.value.name}"
                )
            current[estimate.claim_id] = estimate.value
    print(
        f"replayed {replayer.total_reports():,} reports; "
        f"{len(current)} claims tracked, {n_flips} live flips"
    )
    return 0


def _add_trace(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "trace",
        help="run a traced distributed batch and export a Chrome trace",
        description=(
            "Runs DistributedSSTD.run_batch with observability on and "
            "writes the spans as a Chrome trace-event file.  Open the "
            "output at https://ui.perfetto.dev (or chrome://tracing): "
            "one track per worker/job plus master, control, and system "
            "tracks."
        ),
    )
    parser.add_argument("trace", type=Path, help="trace .jsonl path")
    parser.add_argument("output", type=Path,
                        help="Chrome trace-event output (.json)")
    parser.add_argument("--backend", default="simulated",
                        help="execution backend (default: simulated)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jsonl", type=Path, default=None,
                        help="additionally dump raw span events as JSONL")
    parser.set_defaults(func=_run_trace)


def _run_trace(args: argparse.Namespace) -> int:
    from repro.obs import stitch_metadata, write_chrome_trace, write_jsonl
    from repro.system.sstd_system import (
        BACKENDS,
        DistributedSSTD,
        SSTDSystemConfig,
    )

    if args.backend not in BACKENDS:
        print(f"backend must be one of {BACKENDS}", file=sys.stderr)
        return 1
    trace = Trace.load(args.trace)
    if not trace.reports:
        print("trace has no reports", file=sys.stderr)
        return 1
    system = DistributedSSTD(
        SSTDSystemConfig(
            backend=args.backend,
            n_workers=args.workers,
            seed=args.seed,
            observability=True,
        )
    )
    result = system.run_batch(trace.reports)
    events = system.obs.tracer.events()
    snapshot = system.obs.metrics.snapshot()
    dropped = system.obs.tracer.dropped
    stitch = stitch_metadata(system.obs.stitch)
    write_chrome_trace(
        events,
        args.output,
        metrics=snapshot,
        clock_kind=system.obs.clock.kind,
        dropped=dropped,
        stitch=stitch,
    )
    if args.jsonl is not None:
        count = write_jsonl(events, args.jsonl)
        print(f"wrote {count} span events to {args.jsonl}")
    if dropped:
        print(
            f"warning: ring buffer dropped {dropped} events; the timeline "
            "is truncated (raise the tracer capacity to keep them)",
            file=sys.stderr,
        )
    print(
        f"{args.backend}: {result.n_jobs} jobs / {result.n_tasks} tasks, "
        f"makespan {result.makespan:.3f}s ({system.obs.clock.kind} clock)"
    )
    print(
        f"wrote {len(events)} events to {args.output}"
        + (f" ({dropped} dropped by the ring buffer)" if dropped else "")
    )
    if stitch:
        workers = ", ".join(sorted(stitch))
        print(f"stitched worker timelines: {workers}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _add_replay_controller(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "replay-controller",
        help="re-run a recorded PID trajectory offline",
        description=(
            "Replays a controller trajectory recorded by the feedback "
            "layer (FeedbackConfig.trajectory_path or "
            "DTMConfig.trajectory_path).  Without gain overrides the "
            "replay is bit-identical to the recording — a determinism "
            "check; with --kp/--ki/--kd it answers what the alternative "
            "tuning would have output against the same error sequence."
        ),
    )
    parser.add_argument("trajectory", type=Path,
                        help="trajectory .jsonl recorded by a run")
    parser.add_argument("--kp", type=float, default=None,
                        help="override the proportional gain")
    parser.add_argument("--ki", type=float, default=None,
                        help="override the integral gain")
    parser.add_argument("--kd", type=float, default=None,
                        help="override the derivative gain")
    parser.add_argument("--output", type=Path, default=None,
                        help="save replayed steps as JSONL")
    parser.add_argument("--limit", type=int, default=10,
                        help="per-controller steps to print (0 = none)")
    parser.set_defaults(func=_run_replay_controller)


def _run_replay_controller(args: argparse.Namespace) -> int:
    import json

    from repro.control.feedback import load_trajectory, replay_trajectory
    from repro.control.pid import PIDGains

    samples = load_trajectory(args.trajectory)
    if not samples:
        print("trajectory has no samples", file=sys.stderr)
        return 1
    gains = None
    if args.kp is not None or args.ki is not None or args.kd is not None:
        base = samples[0].gains
        gains = PIDGains(
            kp=args.kp if args.kp is not None else base.kp,
            ki=args.ki if args.ki is not None else base.ki,
            kd=args.kd if args.kd is not None else base.kd,
        )
    steps = replay_trajectory(samples, gains=gains)

    by_controller: dict[str, list] = {}
    for step in steps:
        by_controller.setdefault(step.controller, []).append(step)
    identical = all(step.matches for step in steps)
    mode = (
        f"modified gains kp={gains.kp} ki={gains.ki} kd={gains.kd}"
        if gains is not None
        else "recorded gains"
    )
    print(f"replayed {len(steps)} samples from {args.trajectory} ({mode})")
    for name in sorted(by_controller):
        group = by_controller[name]
        worst = max(step.divergence for step in group)
        print(
            f"  {name}: {len(group)} steps, max divergence {worst:.6g}"
            + ("" if worst else " (bit-identical)")
        )
        if args.limit:
            for step in group[: args.limit]:
                print(
                    f"    e={step.error:+.4f} recorded={step.recorded_output:+.4f} "
                    f"replayed={step.replayed_output:+.4f}"
                )
    if args.output is not None:
        with args.output.open("w", encoding="utf-8") as handle:
            for step in steps:
                handle.write(
                    json.dumps(
                        {
                            "controller": step.controller,
                            "index": step.index,
                            "error": step.error,
                            "dt": step.dt,
                            "recorded_output": step.recorded_output,
                            "replayed_output": step.replayed_output,
                        },
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                    + "\n"
                )
        print(f"wrote {len(steps)} replayed steps to {args.output}")
    if gains is None and not identical:
        print(
            "error: replay at recorded gains diverged from the recording",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_lint(subparsers: argparse._SubParsersAction) -> None:
    parser = subparsers.add_parser(
        "lint",
        help="run the SSTD static-analysis rules (exit 1 on findings)",
        description=(
            "Project-specific lint: SSTD001 exception hygiene, SSTD002 "
            "mutable defaults, SSTD003 lock discipline, SSTD004 seeded "
            "randomness, SSTD005 probability-safe log/exp, SSTD006 "
            "__all__ declarations, SSTD007 guarded-state escapes, "
            "SSTD008 blocking under a lock, SSTD009 payload "
            "picklability, SSTD010 thread/process lifecycle, SSTD011 "
            "clock reads via the repro.obs Clock protocol, SSTD012 "
            "lock-order deadlock cycles, SSTD013 kernel determinism, "
            "SSTD014 resource leaks, SSTD015 exception contracts, "
            "SSTD016 use-after-release. Suppress a finding with a "
            "trailing '# noqa: SSTD###' comment; stale suppressions "
            "are flagged as SSTD000. Use --explain SSTD### for a "
            "rule's rationale and sanction syntax."
        ),
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files/directories (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "github",
                                             "sarif"),
                        default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids, e.g. SSTD003,SSTD004")
    parser.add_argument("--changed-only", default=None, metavar="REF",
                        help="lint only files changed vs REF plus their "
                        "call-graph dependents")
    parser.add_argument("--noqa-budget", type=int, default=None, metavar="N",
                        help="fail when more than N noqa comments exist")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the .lint_cache/ result cache")
    parser.add_argument("--no-stale-noqa", action="store_true",
                        help="skip the SSTD000 stale-suppression audit")
    parser.add_argument("--json-report", type=Path, default=None,
                        metavar="FILE",
                        help="additionally write the JSON report to FILE")
    parser.add_argument("--sarif-report", type=Path, default=None,
                        metavar="FILE",
                        help="additionally write a SARIF 2.1.0 log to FILE")
    parser.add_argument("--stats", action="store_true",
                        help="print cache hit rates to stderr")
    parser.add_argument("--list-rules", action="store_true",
                        help="print registered rules and exit")
    parser.add_argument("--disable", default=None, metavar="RULES",
                        help="comma-separated rule ids to skip "
                        "(applied after --select)")
    parser.add_argument("--explain", default=None, metavar="RULE",
                        help="print a rule's documentation, sanction "
                        "syntax, and example, then exit")
    parser.set_defaults(func=_run_lint)


def _run_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint.cli import main as lint_main

    argv: list[str] = [str(p) for p in args.paths]
    argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.changed_only is not None:
        argv += ["--changed-only", args.changed_only]
    if args.noqa_budget is not None:
        argv += ["--noqa-budget", str(args.noqa_budget)]
    if args.no_cache:
        argv.append("--no-cache")
    if args.no_stale_noqa:
        argv.append("--no-stale-noqa")
    if args.json_report is not None:
        argv += ["--json-report", str(args.json_report)]
    if args.sarif_report is not None:
        argv += ["--sarif-report", str(args.sarif_report)]
    if args.stats:
        argv.append("--stats")
    if args.list_rules:
        argv.append("--list-rules")
    if args.disable:
        argv += ["--disable", args.disable]
    if args.explain is not None:
        argv += ["--explain", args.explain]
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="SSTD reproduction command-line tools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_discover(subparsers)
    _add_evaluate(subparsers)
    _add_stats(subparsers)
    _add_replay(subparsers)
    _add_trace(subparsers)
    _add_replay_controller(subparsers)
    _add_lint(subparsers)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
